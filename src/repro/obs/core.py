"""Observability core: spans, counters and message records.

An :class:`ObsRecorder` attaches to a simulation :class:`~repro.sim.Engine`
(``engine.obs``); instrumented components — the fluid solver, the fabric,
the per-rank progress servers, the MPI runtime and the HAN module — emit

- **spans** (named intervals on a *track*: one track per rank, per CPU
  progress server, per fluid resource),
- **counters** (sampled values, e.g. per-resource utilization),
- **message records** (one per point-to-point message: sender, receiver,
  tag, size, and the send/arrive/complete timestamps that let the
  analysis layer reconstruct cross-rank dependencies).

Every hook point is guarded by a single ``engine.obs is not None`` check,
so a simulation without a recorder attached pays one attribute test per
hook — simulated costs are bit-identical with and without the subsystem
compiled in, and wall-clock overhead is noise-level.

The recorder's contents serialize to a :class:`RunRecord` (a plain-dict
document) which the exporters (:mod:`repro.obs.export`) turn into Chrome
``trace_event`` JSON for Perfetto, a JSONL run record, or a resource
timeline, and which the analysis layer (:mod:`repro.obs.critpath`)
consumes directly.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from bisect import bisect_left
from typing import Any, Optional

from repro.obs.metrics import BYTE_BUCKETS, MetricsRegistry
from repro.sim.engine import Engine

__all__ = [
    "CounterSample",
    "MessageRecord",
    "ObsRecorder",
    "RunRecord",
    "Span",
]

#: span categories that feed the metrics plane (straggler rank-finish
#: tracking and the ``span.seconds`` histograms)
_METRIC_CATS = frozenset(
    {"coll", "phase", "p2p", "cpu", "flow", "module", "wait"}
)
#: the subset that also gets a duration histogram — ``cpu`` is excluded
#: because the cpu plane is already covered with finer-grained metrics
#: (``cpu.busy_seconds``/``cpu.jobs`` counters and the exemplar-bearing
#: ``cpu.queue_wait_seconds`` histogram), and cpu spans are the single
#: hottest span stream, so the duplicate histogram would be the largest
#: line item in the metrics-overhead budget
_HIST_CATS = _METRIC_CATS - {"cpu"}

#: span categories used by the built-in hook points
CAT_COLL = "coll"    # collective entry/exit (HanModule and friends)
CAT_PHASE = "phase"  # HAN task phases: ib / sb / sr / ir, with segment index
CAT_P2P = "p2p"      # MPI send / recv lifetimes
CAT_CPU = "cpu"      # progress-server busy time
CAT_FLOW = "flow"    # fluid flows, one span per resource crossed
CAT_MODULE = "module"  # non-blocking module schedules (adapt.ibcast, ...)


@dataclass
class Span:
    """One named interval on a track.  ``t1 < 0`` means still open."""

    sid: int
    track: str
    name: str
    cat: str
    t0: float
    t1: float = -1.0
    args: dict = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.t1 < 0.0

    @property
    def dur(self) -> float:
        return max(0.0, self.t1 - self.t0)


@dataclass
class MessageRecord:
    """Timing skeleton of one point-to-point message.

    ``t_send`` is the send call, ``t_send_done`` the completion of the
    sender-side software overhead (when the wire work is handed off),
    ``t_arrive`` the instant the last byte lands at the receiver, and
    ``t_recv_done`` the completion of the receiver-side overhead (when
    the matching recv request succeeds).  ``-1`` marks "not yet".
    """

    mid: int
    src: int  # world rank
    dst: int  # world rank
    tag: int
    nbytes: float
    t_send: float
    t_send_done: float = -1.0
    t_arrive: float = -1.0
    t_recv_done: float = -1.0
    protocol: str = ""


@dataclass(frozen=True)
class CounterSample:
    track: str
    name: str
    t: float
    value: float


class ObsRecorder:
    """Span/counter/message registry bound to one engine.

    Use as a context manager (or call :meth:`attach`/:meth:`detach`)::

        rec = ObsRecorder(engine)
        with rec:
            runtime.run(prog)
        doc = rec.run_record(meta={"coll": "bcast"})

    Attaching nests: detaching restores whatever recorder (usually
    ``None``) was installed before.
    """

    def __init__(self, engine: Engine, limit: int = 2_000_000,
                 mode: str = "full"):
        if mode not in ("full", "metrics"):
            raise ValueError(f"mode must be 'full' or 'metrics', got {mode!r}")
        self.engine = engine
        #: hard cap on stored spans / counters / messages; hook points
        #: stop recording (and count drops, per stream) past it, so a
        #: runaway run cannot OOM
        self.limit = limit
        #: ``"full"`` keeps every span/counter/message for trace export;
        #: ``"metrics"`` feeds only the aggregate registry — the cheap
        #: always-on production mode (nothing grows with run length)
        self.mode = mode
        self._full = mode == "full"
        self.spans: list[Span] = []
        self.counters: list[CounterSample] = []
        self.messages: dict[int, MessageRecord] = {}
        #: per-stream drop counters: a truncated trace is diagnosable
        #: only if span and message loss are reported separately
        self.dropped_spans = 0
        self.dropped_counters = 0
        self.dropped_messages = 0
        #: aggregate metrics (always on; bounded cardinality)
        self.metrics = MetricsRegistry()
        self.resources: list[dict] = []  # filled by snapshot_resources()
        self.solver_stats: dict = {}  # fluid-solver work counters, ditto
        self._next_sid = 0
        self._next_mid = 0
        self._open: dict[int, Span] = {}
        self._last_counter: dict[tuple[str, str], float] = {}
        self._rank_finish: dict[str, float] = {}
        # hot-path caches: each metric object is resolved through the
        # registry (label canonicalization, dict probe) once, then hit
        # via a plain dict keyed on the raw label value — per-event cost
        # is one probe plus inc/observe
        self._m_span_hist: dict[str, Any] = {}
        self._m_sent: dict[int, Any] = {}
        self._m_recv: dict[int, Any] = {}
        self._m_cpu: dict[int, Any] = {}
        self._m_gauge: dict[tuple[str, str], Any] = {}
        self._m_msg_bytes: Any = None
        self._m_wait: Any = None
        self._m_flow: Any = None
        self._prev: Any = None
        self._attached = False

    @property
    def dropped(self) -> int:
        """Total drops across all streams (legacy aggregate)."""
        return self.dropped_spans + self.dropped_counters + self.dropped_messages

    # -- lifecycle -------------------------------------------------------------

    def attach(self) -> "ObsRecorder":
        if self._attached:
            return self
        self._prev = self.engine.obs
        self.engine.obs = self
        self._attached = True
        return self

    def detach(self) -> None:
        if self._attached and self.engine.obs is self:
            self.engine.obs = self._prev
        self._attached = False

    def __enter__(self) -> "ObsRecorder":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- spans -------------------------------------------------------------

    def begin(self, track: str, name: str, cat: str = "", **args) -> int:
        """Open a span at the current simulated time; returns its id."""
        if self._full and len(self.spans) >= self.limit:
            self.dropped_spans += 1
            return -1
        sid = self._next_sid
        self._next_sid += 1
        sp = Span(sid, track, name, cat, self.engine.now, args=args)
        if self._full:
            self.spans.append(sp)
        self._open[sid] = sp
        return sid

    def end(self, sid: int, **args) -> None:
        """Close an open span at the current simulated time."""
        sp = self._open.pop(sid, None)
        if sp is None:
            return
        sp.t1 = self.engine.now
        if args:
            sp.args.update(args)
        self._span_metrics(sp)

    def complete(
        self, track: str, name: str, t0: float, t1: float, cat: str = "", **args
    ) -> int:
        """Record an already-finished span (both endpoints known)."""
        if self._full and len(self.spans) >= self.limit:
            self.dropped_spans += 1
            return -1
        sid = self._next_sid
        self._next_sid += 1
        sp = Span(sid, track, name, cat, t0, t1, args)
        if self._full:
            self.spans.append(sp)
        self._span_metrics(sp)
        return sid

    def _span_metrics(self, sp: Span) -> None:
        """Aggregate a closed span into the metrics registry.

        This and the other per-event hooks below manually inline
        ``Counter.inc`` / ``Histogram.observe``: at ~200k updates per
        tuning sweep the method-call overhead alone is a large slice of
        the metrics budget enforced by ``scripts/check_obs_overhead.py``.
        """
        if sp.cat not in _METRIC_CATS:
            return
        if sp.cat in _HIST_CATS:
            h = self._m_span_hist.get(sp.cat)
            if h is None:
                h = self._m_span_hist[sp.cat] = self.metrics.histogram(
                    "span.seconds", cat=sp.cat
                )
            i = bisect_left(h.bounds, sp.dur)
            h.counts[i] += 1
            h.exemplars[i] = sp.sid
            h.sum += sp.dur
        if sp.track.startswith("rank"):
            # last activity per rank track drives the straggler gauges
            prev = self._rank_finish.get(sp.track, 0.0)
            if sp.t1 > prev:
                self._rank_finish[sp.track] = sp.t1

    def instant(self, track: str, name: str, **args) -> None:
        self.complete(track, name, self.engine.now, self.engine.now, "instant",
                      **args)

    # -- counters -------------------------------------------------------------

    def counter(self, track: str, name: str, value: float) -> None:
        """Sample a counter; consecutive identical values are deduped."""
        value = float(value)
        key = (track, name)
        if self._last_counter.get(key) == value:
            return
        self._last_counter[key] = value
        g = self._m_gauge.get(key)
        if g is None:
            g = self._m_gauge[key] = self.metrics.gauge(name, track=track)
        g.value = value
        if value > g.max_value:
            g.max_value = value
        if not self._full:
            return
        if len(self.counters) >= self.limit:
            self.dropped_counters += 1
            return
        self.counters.append(
            CounterSample(track, name, self.engine.now, float(value))
        )

    # -- messages -------------------------------------------------------------

    def msg_begin(self, src: int, dst: int, tag: int, nbytes: float,
                  protocol: str = "") -> int:
        # Byte accounting happens at send time for both endpoints: the
        # simulator delivers every message, so the totals agree with
        # arrival accounting while staying correct in metrics-only mode
        # (where no MessageRecord survives to arrival).
        nbytes = float(nbytes)
        c = self._m_sent.get(src)
        if c is None:
            c = self._m_sent[src] = self.metrics.counter(
                "mpi.bytes_sent", rank=src
            )
        c.value += nbytes
        c = self._m_recv.get(dst)
        if c is None:
            c = self._m_recv[dst] = self.metrics.counter(
                "mpi.bytes_received", rank=dst
            )
        c.value += nbytes
        h = self._m_msg_bytes
        if h is None:
            h = self._m_msg_bytes = self.metrics.histogram(
                "mpi.message_bytes", BYTE_BUCKETS
            )
        h.counts[bisect_left(h.bounds, nbytes)] += 1
        h.sum += nbytes
        if not self._full:
            return -1
        if len(self.messages) >= self.limit:
            self.dropped_messages += 1
            return -1
        mid = self._next_mid
        self._next_mid += 1
        self.messages[mid] = MessageRecord(
            mid, src, dst, tag, nbytes, self.engine.now,
            protocol=protocol,
        )
        return mid

    def msg_send_done(self, mid: int) -> None:
        m = self.messages.get(mid)
        if m is not None and m.t_send_done < 0:
            m.t_send_done = self.engine.now

    def msg_arrived(self, mid: int) -> None:
        m = self.messages.get(mid)
        if m is not None:
            m.t_arrive = self.engine.now

    def msg_recv_done(self, mid: int) -> None:
        m = self.messages.get(mid)
        if m is not None:
            m.t_recv_done = self.engine.now

    # -- derived metrics hooks ---------------------------------------------------

    def cpu_job(self, rank: int, busy: float, wait: float,
                sid: int = -1) -> None:
        """One progress-server job: ``busy`` seconds of CPU after
        ``wait`` seconds in the FIFO queue (0 when the server was idle).

        Fed by :class:`~repro.netsim.progress.ProgressServer` — the
        queue-wait distribution is the "how contended is the progress
        engine" signal the span stream only shows one interval at a time.
        """
        pair = self._m_cpu.get(rank)
        if pair is None:
            pair = self._m_cpu[rank] = (
                self.metrics.counter("cpu.busy_seconds", rank=rank),
                self.metrics.counter("cpu.jobs", rank=rank),
            )
        pair[0].value += busy
        pair[1].value += 1.0
        h = self._m_wait
        if h is None:
            h = self._m_wait = self.metrics.histogram(
                "cpu.queue_wait_seconds"
            )
        i = bisect_left(h.bounds, wait)
        h.counts[i] += 1
        if sid >= 0:
            h.exemplars[i] = sid
        h.sum += wait

    def flow_done(self, nbytes: float, dur: float, sid: int = -1) -> None:
        """One completed fluid flow (fed by the solver at retirement).

        Flow *durations* already land in ``span.seconds{cat=flow}`` with
        exemplars, so only the count and the size distribution are kept
        here.
        """
        pair = self._m_flow
        if pair is None:
            pair = self._m_flow = (
                self.metrics.counter("net.flows"),
                self.metrics.histogram("net.flow_bytes", BYTE_BUCKETS),
            )
        pair[0].value += 1.0
        h = pair[1]
        nbytes = float(nbytes)
        i = bisect_left(h.bounds, nbytes)
        h.counts[i] += 1
        if sid >= 0:
            h.exemplars[i] = sid
        h.sum += nbytes

    # -- export -------------------------------------------------------------

    def snapshot_resources(self, solver) -> None:
        """Capture the fluid solver's time-integrated resource accounting."""
        solver.sync_accounting()
        stats = getattr(solver, "kernel_stats", None)
        self.solver_stats = stats() if callable(stats) else {}
        horizon = self.engine.now
        self.resources = [
            {
                "rid": rid,
                "name": solver.resource_name(rid) or f"res{rid}",
                "capacity": solver.capacity(rid),
                "busy_time": solver.busy_time(rid),
                "served_bytes": solver.served_bytes(rid),
                "mean_utilization": (
                    solver.served_bytes(rid)
                    / (solver.capacity(rid) * horizon)
                    if horizon > 0 and solver.capacity(rid) > 0
                    else 0.0
                ),
            }
            for rid in range(solver.num_resources)
        ]
        # exact time-integrated utilization as gauges: the NIC / membus /
        # link load numbers the metrics plane stores and diffs per run
        for res in self.resources:
            self.metrics.gauge(
                "resource.mean_utilization", res=res["name"]
            ).set(res["mean_utilization"])
            self.metrics.gauge(
                "resource.served_bytes", res=res["name"]
            ).set(res["served_bytes"])

    def _derive_metrics(self) -> None:
        """Cheap end-of-run derived gauges (straggler skew)."""
        m = self.metrics
        busy = [
            c.value for c in m.counters if c.name == "cpu.busy_seconds"
        ]
        if busy:
            med = statistics.median(busy)
            m.gauge("straggler.cpu_skew").set(
                max(busy) / med if med > 0 else 1.0
            )
        if self._rank_finish:
            finish = sorted(self._rank_finish.values())
            med = statistics.median(finish)
            m.gauge("straggler.finish_skew").set(
                max(finish) / med if med > 0 else 1.0
            )

    def run_record(self, meta: Optional[dict] = None) -> "RunRecord":
        """Freeze the recorder into a serializable :class:`RunRecord`."""
        self._derive_metrics()
        extra = {"solver": self.solver_stats} if self.solver_stats else {}
        return RunRecord(
            meta=dict(meta or {}, sim_time=self.engine.now,
                      dropped=self.dropped,
                      dropped_spans=self.dropped_spans,
                      dropped_messages=self.dropped_messages,
                      dropped_counters=self.dropped_counters,
                      **extra),
            spans=[s for s in self.spans if not s.open],
            messages=sorted(self.messages.values(), key=lambda m: m.mid),
            counters=list(self.counters),
            resources=list(self.resources),
            metrics=self.metrics.to_doc(),
        )


@dataclass
class RunRecord:
    """Everything one observed run produced, decoupled from the engine."""

    meta: dict
    spans: list[Span]
    messages: list[MessageRecord]
    counters: list[CounterSample]
    resources: list[dict]
    #: serialized :class:`~repro.obs.metrics.MetricsRegistry` document
    metrics: dict = field(default_factory=dict)

    # -- convenience selectors ----------------------------------------------

    def spans_by_cat(self, cat: str) -> list[Span]:
        return [s for s in self.spans if s.cat == cat]

    def phase_spans(self, name: Optional[str] = None) -> list[Span]:
        return [
            s
            for s in self.spans
            if s.cat == CAT_PHASE and (name is None or s.name == name)
        ]

    def tracks(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.track, None)
        return list(seen)

    @property
    def sim_time(self) -> float:
        return float(self.meta.get("sim_time", 0.0))

    def metrics_registry(self) -> "MetricsRegistry":
        """The run's metrics, rehydrated into a live registry."""
        return MetricsRegistry.from_doc(self.metrics)
