"""Critical-path extraction and run comparison over :class:`RunRecord`\\ s.

The simulated machine has exactly two kinds of time consumers: serial
per-rank CPU work (progress-server busy spans, category ``cpu``) and
wire transfers (message records).  That makes the dependency structure
explicit in the recording:

- within one CPU track, busy spans are totally ordered (FIFO server);
- across tracks, the only edges are messages: the receiver's ``recv_ov``
  span (tagged with the message id ``mid``) depends on the arrival of
  the data, which depends on the sender's ``send_ov`` span (same mid).

:func:`critical_path` walks those edges backward from the last CPU span
to finish.  Every instant in ``[0, end]`` lands in exactly one segment,
attributed as

- ``cpu``      -- a progress-server busy span lies on the path,
- ``net``      -- wire/control time of the path's message
                  (``t_send_done .. t_arrive``),
- ``wait``     -- nothing on the path was running (dependency slack:
                  late-posted receives, barrier skew, pipeline bubbles).

so on a purely serial schedule the attribution covers 100% of simulated
time by construction.  :func:`phase_overlap` measures the wall-clock
concurrency between two HAN phases (e.g. ``ib`` vs ``sb``) and
:func:`diff_runs` compares two recordings end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.core import CAT_CPU, CAT_PHASE, MessageRecord, RunRecord, Span

__all__ = [
    "CritSegment",
    "CriticalPath",
    "critical_path",
    "diff_runs",
    "phase_overlap",
    "phase_totals",
]

_EPS = 1e-12


@dataclass(frozen=True)
class CritSegment:
    """One chronological piece of the critical path."""

    t0: float
    t1: float
    kind: str  # "cpu" | "net" | "wait"
    label: str  # span name / message description
    track: str  # where it happened ("" for wait gaps)

    @property
    def dur(self) -> float:
        return max(0.0, self.t1 - self.t0)


@dataclass
class CriticalPath:
    """The extracted path plus its time attribution."""

    segments: list[CritSegment]  # chronological
    end: float  # finish time of the anchor span

    def total(self, kind: str) -> float:
        return sum(s.dur for s in self.segments if s.kind == kind)

    @property
    def attribution(self) -> dict:
        out = {k: self.total(k) for k in ("cpu", "net", "wait")}
        out["end"] = self.end
        covered = sum(s.dur for s in self.segments)
        out["coverage"] = covered / self.end if self.end > 0 else 1.0
        return out


def _cpu_spans(record: RunRecord) -> list[Span]:
    return sorted(record.spans_by_cat(CAT_CPU), key=lambda s: (s.t1, s.t0))


def critical_path(record: RunRecord) -> CriticalPath:
    """Backward walk from the last CPU span to time zero."""
    cpus = _cpu_spans(record)
    if not cpus:
        end = record.sim_time
        segs = [CritSegment(0.0, end, "wait", "idle", "")] if end > 0 else []
        return CriticalPath(segments=segs, end=end)

    by_track: dict[str, list[Span]] = {}
    for s in cpus:
        by_track.setdefault(s.track, []).append(s)
    msgs: dict[int, MessageRecord] = {m.mid: m for m in record.messages}
    send_ov: dict[int, Span] = {}
    for s in cpus:
        mid = s.args.get("mid", -1)
        if s.name == "send_ov" and mid >= 0:
            send_ov[mid] = s

    def prev_on_track(span: Span, before: float) -> Span | None:
        best = None
        for cand in by_track[span.track]:
            if cand is span or cand.t1 > before + _EPS:
                continue
            if best is None or cand.t1 > best.t1:
                best = cand
        return best

    anchor = max(cpus, key=lambda s: s.t1)
    segments: list[CritSegment] = []
    cur: Span | None = anchor
    guard = 0
    while cur is not None and guard < 10 * len(cpus) + 16:
        guard += 1
        segments.append(
            CritSegment(cur.t0, cur.t1, "cpu", cur.name, cur.track)
        )
        if cur.t0 <= _EPS:
            cur = None
            break
        mid = cur.args.get("mid", -1)
        m = msgs.get(mid) if cur.name == "recv_ov" else None
        if m is not None and m.t_arrive >= 0:
            # dependency edge: data arrival (plus any matching wait)
            if cur.t0 - m.t_arrive > _EPS:
                segments.append(CritSegment(
                    m.t_arrive, cur.t0, "wait",
                    f"match m{m.mid}", cur.track,
                ))
            t_net0 = m.t_send_done if m.t_send_done >= 0 else m.t_send
            label = f"m{m.mid} {m.src}->{m.dst} ({m.protocol})"
            segments.append(
                CritSegment(t_net0, m.t_arrive, "net", label, "")
            )
            sender = send_ov.get(m.mid)
            if sender is not None:
                if t_net0 - sender.t1 > _EPS:
                    segments.append(CritSegment(
                        sender.t1, t_net0, "wait", f"ctrl m{m.mid}", ""
                    ))
                cur = sender
                continue
            if t_net0 > _EPS:
                segments.append(
                    CritSegment(0.0, t_net0, "wait", "start", "")
                )
            cur = None
            break
        prev = prev_on_track(cur, cur.t0)
        if prev is not None and cur.t0 - prev.t1 <= _EPS:
            cur = prev  # back-to-back on the same CPU
            continue
        # idle gap: fall back to the latest CPU span (any track) ending
        # at or before the gap start; the machine was waiting on it
        best = None
        for cand in cpus:
            if cand.t1 <= cur.t0 + _EPS and cand is not cur:
                if best is None or cand.t1 > best.t1:
                    best = cand
        if best is None:
            segments.append(
                CritSegment(0.0, cur.t0, "wait", "start", cur.track)
            )
            cur = None
        else:
            if cur.t0 - best.t1 > _EPS:
                segments.append(CritSegment(
                    best.t1, cur.t0, "wait", "idle", cur.track
                ))
            cur = best

    segments.reverse()
    return CriticalPath(segments=segments, end=anchor.t1)


# -- phase analysis -------------------------------------------------------------


def _union(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    if not intervals:
        return []
    out = []
    for t0, t1 in sorted(intervals):
        if out and t0 <= out[-1][1] + _EPS:
            out[-1] = (out[-1][0], max(out[-1][1], t1))
        else:
            out.append((t0, t1))
    return out


def _intersect_len(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> float:
    total, i, j = 0.0, 0, 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


def phase_totals(record: RunRecord) -> dict[str, dict]:
    """Per HAN phase (ib/sb/sr/ir): count, summed and union durations."""
    out: dict[str, dict] = {}
    by_name: dict[str, list[tuple[float, float]]] = {}
    for s in record.spans:
        if s.cat != CAT_PHASE:
            continue
        by_name.setdefault(s.name, []).append((s.t0, s.t1))
        d = out.setdefault(s.name, {"count": 0, "total": 0.0})
        d["count"] += 1
        d["total"] += s.dur
    for name, ivs in by_name.items():
        out[name]["union"] = sum(t1 - t0 for t0, t1 in _union(ivs))
    return out


def phase_overlap(record: RunRecord, a: str, b: str) -> float:
    """Wall-clock seconds during which phases ``a`` and ``b`` both ran."""
    iv_a = _union([(s.t0, s.t1) for s in record.phase_spans(a)])
    iv_b = _union([(s.t0, s.t1) for s in record.phase_spans(b)])
    return _intersect_len(iv_a, iv_b)


# -- run comparison -------------------------------------------------------------


def diff_runs(a: RunRecord, b: RunRecord) -> dict:
    """Structured comparison of two recordings (A = baseline, B = new)."""
    pa, pb = phase_totals(a), phase_totals(b)
    phases = {}
    for name in sorted(set(pa) | set(pb)):
        ta = pa.get(name, {}).get("total", 0.0)
        tb = pb.get(name, {}).get("total", 0.0)
        phases[name] = {"a": ta, "b": tb, "delta": tb - ta}
    ra = {r["name"]: r for r in a.resources}
    rb = {r["name"]: r for r in b.resources}
    resources = {}
    for name in sorted(set(ra) | set(rb)):
        ba = ra.get(name, {}).get("busy_time", 0.0)
        bb = rb.get(name, {}).get("busy_time", 0.0)
        if ba or bb:
            resources[name] = {"a": ba, "b": bb, "delta": bb - ba}
    ca, cb = critical_path(a).attribution, critical_path(b).attribution
    return {
        "sim_time": {
            "a": a.sim_time, "b": b.sim_time,
            "delta": b.sim_time - a.sim_time,
        },
        "messages": {"a": len(a.messages), "b": len(b.messages),
                     "delta": len(b.messages) - len(a.messages)},
        "spans": {"a": len(a.spans), "b": len(b.spans),
                  "delta": len(b.spans) - len(a.spans)},
        "phases": phases,
        "resources": resources,
        "critical_path": {
            k: {"a": ca[k], "b": cb[k], "delta": cb[k] - ca[k]}
            for k in ("cpu", "net", "wait")
        },
    }
