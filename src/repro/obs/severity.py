"""PICO-style severity grading, shared by insights and serve verdicts.

PICO's key observation is that collective-performance findings are only
actionable when they are *quantified*: "allreduce violates its
composition bound" matters very differently at 2% and at 200% excess,
and an operator triaging thousands of findings needs them ranked by
damage, not listed pass/fail.  Every graded violation therefore carries:

- ``cost_seconds`` — the excess over the guideline bound, in seconds:
  how much wall time the violation costs per occurrence;
- ``cost_bytes``   — the bytes-equivalent of that excess at the point's
  achieved throughput (``nbytes / time * excess``): how much payload
  could have moved in the wasted time;
- ``grade``        — ``"warn"`` below :data:`ERROR_REL_EXCESS` relative
  excess, ``"error"`` at or above it (``"ok"`` when within tolerance).

The same grading is applied by the serve-time verdict layer
(:mod:`repro.serve.guidelines`) and the observatory's insight engine
(:mod:`repro.obs.insights`), so a flagged stored decision and a flagged
measured run rank on one scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "ERROR_REL_EXCESS",
    "Severity",
    "grade_excess",
    "severity",
]

#: relative excess below this grades a violation "warn", above "error"
ERROR_REL_EXCESS = 0.10


def grade_excess(rel_excess: float) -> str:
    """``"warn"`` / ``"error"`` grade of one relative excess."""
    return "error" if rel_excess >= ERROR_REL_EXCESS else "warn"


@dataclass(frozen=True)
class Severity:
    """Quantified severity of one guideline violation."""

    grade: str  # "ok" | "warn" | "error"
    cost_seconds: float
    cost_bytes: float
    rel_excess: float

    @property
    def ok(self) -> bool:
        return self.grade == "ok"

    def to_doc(self) -> dict:
        return {
            "grade": self.grade,
            "cost_seconds": self.cost_seconds,
            "cost_bytes": self.cost_bytes,
            "rel_excess": self.rel_excess,
        }


#: the all-clear severity
OK = Severity(grade="ok", cost_seconds=0.0, cost_bytes=0.0, rel_excess=0.0)


def severity(time_s: float, bound_s: float, nbytes: float = 0.0,
             tol: float = 0.0) -> Severity:
    """Grade ``time_s`` against the guideline bound ``bound_s``.

    ``tol`` is the relative tolerance the check allows before it counts
    as a violation (a time within ``bound * (1 + tol)`` grades ``"ok"``);
    the *cost* is always measured against the bound itself, so two
    checks with different tolerances still rank on one damage scale.
    ``nbytes`` (when known) converts the excess into a bytes-equivalent
    at the point's achieved throughput.
    """
    if not (math.isfinite(time_s) and math.isfinite(bound_s)) \
            or bound_s <= 0.0:
        if time_s <= bound_s:
            return OK
        return Severity(grade="error", cost_seconds=float("inf"),
                        cost_bytes=float("inf"), rel_excess=float("inf"))
    if time_s <= bound_s * (1.0 + tol):
        return OK
    excess = time_s - bound_s
    rel = time_s / bound_s - 1.0
    cost_bytes = nbytes / time_s * excess if time_s > 0 and nbytes else 0.0
    return Severity(grade=grade_excess(rel), cost_seconds=excess,
                    cost_bytes=cost_bytes, rel_excess=rel)
