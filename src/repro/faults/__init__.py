"""Deterministic fault-injection & performance-variability subsystem.

The seed simulator models a *pristine* platform: every link, NIC and
rank behaves identically on every run, so the autotuner is only ever
exercised on noise-free measurements — a regime the "variability
matters" literature (Cornebize & Legrand; Hunold) shows is unrealistic
and misleading for tuning decisions.  This package perturbs the
simulated platform *without touching algorithm code*:

=====================  ====================================================
injector               perturbation
=====================  ====================================================
:class:`LinkDegradation`  scale a link/NIC/memory-bus capacity over a
                          time window
:class:`LinkFlap`         capacity -> 0 then restore; in-flight flows
                          stall and resume where they left off
:class:`OsNoise`          per-rank CPU progress-engine jitter from a
                          seeded RNG (system noise / stragglers)
:class:`MessageJitter`    per-message network latency perturbation
:class:`RankSlowdown`     persistent straggler (one rank's CPU slowed)
=====================  ====================================================

Injectors are grouped into a :class:`FaultPlan` — a declarative,
seedable schedule.  Determinism contract:

- no plan, or every injector at amplitude 0 / factor 1: bit-identical
  to a run without this subsystem;
- fixed ``(seed, trial)``: two runs are bit-identical to each other;
- different ``trial`` indices: independent noise realizations (what
  repeated-trial measurement, ``tuning.measure``, aggregates over).

:class:`FaultyMachineSpec` wraps any :class:`~repro.hardware.MachineSpec`
so every :class:`~repro.mpi.MPIRuntime` built on it installs the plan
automatically — experiment drivers and the autotuner stay agnostic.
"""

from repro.faults.injectors import (
    Injector,
    LinkDegradation,
    LinkFlap,
    MessageJitter,
    OsNoise,
    RankSlowdown,
)
from repro.faults.machine import FaultyMachineSpec
from repro.faults.plan import FaultPlan, spawn_generators

__all__ = [
    "FaultPlan",
    "FaultyMachineSpec",
    "Injector",
    "LinkDegradation",
    "LinkFlap",
    "MessageJitter",
    "OsNoise",
    "RankSlowdown",
    "spawn_generators",
]
