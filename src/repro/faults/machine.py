"""FaultyMachineSpec: any machine preset, made perturbable.

Wrapping keeps the fault layer orthogonal to the hardware layer: every
consumer that accepts a :class:`~repro.hardware.MachineSpec`
(``MPIRuntime``, ``measure_collective``, the experiment drivers) works
unchanged, and :class:`~repro.mpi.MPIRuntime` installs the attached
plan right after building the fabric.  ``scaled()`` and
``dataclasses.replace`` preserve the wrapper, so experiment geometry
scaling composes with fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.faults.plan import FaultPlan
from repro.hardware.spec import MachineSpec

__all__ = ["FaultyMachineSpec"]


@dataclass(frozen=True)
class FaultyMachineSpec(MachineSpec):
    """A MachineSpec carrying a :class:`FaultPlan` to auto-install."""

    fault_plan: FaultPlan = field(default_factory=FaultPlan)

    @classmethod
    def wrap(cls, machine: MachineSpec, plan: FaultPlan) -> "FaultyMachineSpec":
        """Attach ``plan`` to an existing spec (idempotent on wrappers)."""
        base = {f.name: getattr(machine, f.name) for f in fields(MachineSpec)}
        return cls(fault_plan=plan, **base)

    def pristine(self) -> MachineSpec:
        """The underlying fault-free spec."""
        base = {f.name: getattr(self, f.name) for f in fields(MachineSpec)}
        return MachineSpec(**base)
