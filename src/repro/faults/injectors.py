"""The fault injectors: seeded, deterministic platform perturbations.

Each injector is an immutable description; :meth:`Injector.install` arms
it on one live :class:`~repro.mpi.MPIRuntime` (fresh state per runtime,
so one injector instance can be reused across trials).  Capacity
injectors schedule :meth:`~repro.sim.fluid.FluidSolver.set_capacity`
calls on the engine; timing injectors return an overhead hook that the
owning :class:`~repro.faults.plan.FaultPlan` chains onto
``engine.overhead_hook``.

Targets for capacity injectors are ``(kind, *ids)`` tuples resolved by
:meth:`repro.netsim.fabric.Fabric.fault_resources`::

    ("link", 1, 2)   # interconnect link(s) on the node-1 -> node-2 route
    ("nic", 3)       # both NIC directions of node 3
    ("nic_tx", 3)    # transmit side only
    ("membus", 0)    # node 0's memory bus
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = [
    "Injector",
    "LinkDegradation",
    "LinkFlap",
    "MessageJitter",
    "OsNoise",
    "RankSlowdown",
]

#: hook signature: (kind, who, duration) -> duration
OverheadHook = Callable[[str, int, float], float]


class Injector(ABC):
    """One deterministic perturbation of the simulated platform."""

    @abstractmethod
    def install(self, runtime, rng_seq) -> Optional[OverheadHook]:
        """Arm the injector on a live runtime.

        ``rng_seq`` is this injector's private ``numpy.random.SeedSequence``
        child (spawned by the plan); injectors that need randomness derive
        generators from it, deterministic ones ignore it.  Returns an
        overhead hook to chain, or ``None``.
        """


def _capacity_window(runtime, rids, factor, start, end) -> None:
    """Schedule capacity *= factor over [start, end) on the given resources.

    The pre-window capacities are captured at window entry and restored
    verbatim at window exit (a multiplicative restore would divide by
    zero for a dead link), so overlapping windows on the same resource
    compose as last-restore-wins.
    """
    solver = runtime.fabric.solver
    engine = runtime.engine
    saved: dict[int, float] = {}

    def enter() -> None:
        for r in rids:
            saved[r] = solver.capacity(r)
        # one batched rescale: the whole fault domain (e.g. every lane of
        # a trunk route) changes at the same instant with a single
        # accounting advance and one rate recompute
        solver.set_capacities((r, saved[r] * factor) for r in rids)

    def leave() -> None:
        solver.set_capacities((r, saved[r]) for r in rids)

    engine.schedule_at(start, enter)
    if math.isfinite(end):
        engine.schedule_at(end, leave)


def _resolve_target(fabric, target, symmetric: bool) -> Tuple[int, ...]:
    rids = fabric.fault_resources(*target)
    if symmetric and target[0] == "link":
        rids += fabric.fault_resources("link", target[2], target[1])
    if not rids:
        # e.g. a "link" target on a crossbar, which has no internal
        # links -- a silent no-op here would fake a fault-free pass
        raise ValueError(
            f"fault target {target!r} resolved to no hardware resources "
            "(crossbar-style topologies have no internal links; target "
            "the NICs instead)"
        )
    # order-preserving dedup (routes can share links)
    return tuple(dict.fromkeys(rids))


@dataclass(frozen=True)
class LinkDegradation(Injector):
    """Scale a hardware resource's capacity by ``factor`` over a window.

    ``factor=1`` is the identity (useful as an amplitude-zero control);
    ``factor=0`` is a dead resource for the window — use
    :class:`LinkFlap` for that intent.  ``end=inf`` makes the
    degradation permanent.  ``symmetric`` (link targets only) also
    degrades the reverse route.
    """

    target: tuple
    factor: float
    start: float = 0.0
    end: float = math.inf
    symmetric: bool = True

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise ValueError(f"factor must be >= 0, got {self.factor}")
        if not (0 <= self.start <= self.end):
            raise ValueError(f"bad window [{self.start}, {self.end})")

    def install(self, runtime, rng_seq) -> None:
        if self.factor == 1.0:
            return None
        rids = _resolve_target(runtime.fabric, self.target, self.symmetric)
        _capacity_window(runtime, rids, self.factor, self.start, self.end)
        return None


@dataclass(frozen=True)
class LinkFlap(Injector):
    """Kill a resource's capacity over [start, end), then restore it.

    In-flight flows crossing the resource stall at rate zero for the
    window and resume with their remaining bytes when capacity returns;
    max-min fair shares re-converge at both edges.  ``end=inf`` is a
    permanent kill (the scenario HAN's degraded-mode fallback handles).
    """

    target: tuple
    start: float = 0.0
    end: float = math.inf
    symmetric: bool = True

    def install(self, runtime, rng_seq) -> None:
        rids = _resolve_target(runtime.fabric, self.target, self.symmetric)
        _capacity_window(runtime, rids, 0.0, self.start, self.end)
        return None


@dataclass(frozen=True)
class OsNoise(Injector):
    """Per-rank CPU progress-engine jitter (system noise / stragglers).

    Two components, both exponential (the classic heavy-ish-tailed OS
    detour model) and both exactly off at amplitude zero:

    - ``amplitude``: a per-*run* slowdown factor ``1 + amplitude * Exp(1)``
      drawn once per rank at install — node-level interference that
      persists for the whole run (the run-to-run variability of
      Cornebize & Legrand that flips naive tuning decisions);
    - ``per_op``: an extra ``1 + per_op * Exp(1)`` multiplier drawn per
      CPU request — fine-grained detours (daemons, IRQs).

    ``prob`` makes the run-level straggler *intermittent*: each rank is
    affected only with that probability (default 1 = always).  Rare
    large stragglers are the regime where one corrupted sample crowns
    the wrong autotuning winner and median-of-k restores it.  ``ranks``
    restricts the noise to a subset of world ranks.
    """

    amplitude: float = 0.1
    per_op: float = 0.0
    prob: float = 1.0
    ranks: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.amplitude < 0 or self.per_op < 0:
            raise ValueError("noise amplitudes must be >= 0")
        if not (0 <= self.prob <= 1):
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")

    def install(self, runtime, rng_seq) -> Optional[OverheadHook]:
        if self.amplitude == 0.0 and self.per_op == 0.0:
            return None
        n = runtime.machine.num_ranks
        children = rng_seq.spawn(n + 1)
        factors = np.ones(n)
        if self.amplitude > 0.0:
            for r in range(n):
                if self.ranks is not None and r not in self.ranks:
                    continue
                rng = np.random.Generator(np.random.PCG64(children[r]))
                hit = self.prob >= 1.0 or rng.random() < self.prob
                if hit:
                    factors[r] = 1.0 + self.amplitude * rng.exponential()
        op_rng = np.random.Generator(np.random.PCG64(children[n]))
        per_op, ranks = self.per_op, self.ranks

        def hook(kind: str, who: int, duration: float) -> float:
            if kind != "cpu" or not (0 <= who < n):
                return duration
            if ranks is not None and who not in ranks:
                return duration
            duration *= factors[who]
            if per_op > 0.0:
                duration *= 1.0 + per_op * op_rng.exponential()
            return duration

        return hook


@dataclass(frozen=True)
class MessageJitter(Injector):
    """Perturb every message's network latency by ``+ Exp(amplitude)``.

    ``amplitude`` is the *mean* extra latency in seconds; zero is the
    exact identity.  ``ranks`` restricts jitter to messages *sent by*
    those world ranks.
    """

    amplitude: float = 0.0
    ranks: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ValueError("amplitude must be >= 0")

    def install(self, runtime, rng_seq) -> Optional[OverheadHook]:
        if self.amplitude == 0.0:
            return None
        rng = np.random.Generator(np.random.PCG64(rng_seq))
        amplitude, ranks = self.amplitude, self.ranks

        def hook(kind: str, who: int, duration: float) -> float:
            if kind != "net_latency":
                return duration
            if ranks is not None and who not in ranks:
                return duration
            return duration + rng.exponential(amplitude)

        return hook


@dataclass(frozen=True)
class RankSlowdown(Injector):
    """Persistent straggler: one rank's CPU work takes ``factor`` x longer.

    Deterministic (no RNG) — the controlled-experiment counterpart of
    :class:`OsNoise`.  A time window confines the slowdown.
    """

    rank: int
    factor: float = 2.0
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {self.factor}")

    def install(self, runtime, rng_seq) -> Optional[OverheadHook]:
        if self.factor == 1.0:
            return None
        engine = runtime.engine
        rank, factor, start, end = self.rank, self.factor, self.start, self.end

        def hook(kind: str, who: int, duration: float) -> float:
            if kind == "cpu" and who == rank and start <= engine.now < end:
                return duration * factor
            return duration

        return hook
