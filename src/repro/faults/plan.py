"""The FaultPlan: a declarative, seedable schedule of injectors.

Seeding discipline (the repo-wide rule, see ``HanConfig.seed``): one
top-level integer seed, children spawned via
``numpy.random.SeedSequence`` — no module-level RNG state.  A plan's
entropy tree is::

    SeedSequence(seed, spawn_key=(trial,))
        ├── child 0  -> injector 0   (which may spawn per-rank children)
        ├── child 1  -> injector 1
        └── ...

so each (seed, trial) pair is an independent, reproducible noise
realization and injector RNG streams never interfere with each other.

The tree itself lives in :mod:`repro.util.entropy` — the one shared
implementation that :class:`repro.tenancy.TrafficPlan` derives through
as well; the regression suite pins this plan's realizations
bit-identically across the extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.faults.injectors import Injector
from repro.util.entropy import entropy_children, generators_from

__all__ = ["FaultPlan", "spawn_generators"]


def spawn_generators(seed: Optional[int], n: int) -> list:
    """``n`` independent ``numpy.random.Generator`` children of ``seed``."""
    return generators_from(entropy_children(seed, n))


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of injectors plus the entropy to drive them.

    ``seed=None`` means "resolve later" — consumers that own a
    :class:`~repro.core.HanConfig` substitute ``config.seed`` (see
    ``tuning.measure``); a still-unresolved seed falls back to 0 so a
    bare plan stays deterministic.  ``trial`` selects one noise
    realization; repeated-trial measurement re-installs the plan with
    ``for_trial(0..k-1)``.
    """

    injectors: Tuple[Injector, ...] = ()
    seed: Optional[int] = None
    trial: int = 0

    def add(self, *injectors: Injector) -> "FaultPlan":
        """Functional append (plans are immutable)."""
        return replace(self, injectors=self.injectors + tuple(injectors))

    def with_seed(self, seed: Optional[int]) -> "FaultPlan":
        return replace(self, seed=seed)

    def for_trial(self, trial: int) -> "FaultPlan":
        """The same faults under the ``trial``-th noise realization."""
        return replace(self, trial=int(trial))

    def resolve_seed(self, fallback: Optional[int]) -> "FaultPlan":
        """Fill an unset seed from ``fallback`` (e.g. ``HanConfig.seed``)."""
        if self.seed is not None or fallback is None:
            return self
        return replace(self, seed=fallback)

    def install(self, runtime) -> None:
        """Arm every injector on ``runtime``; chain their overhead hooks.

        Installing an empty plan is a strict no-op, and injectors at
        amplitude zero install nothing — both leave the runtime
        bit-identical to one that never saw this subsystem.
        """
        if not self.injectors:
            return
        children = entropy_children(
            self.seed, len(self.injectors), trial=self.trial
        )
        hooks = [
            h
            for inj, child in zip(self.injectors, children)
            if (h := inj.install(runtime, child)) is not None
        ]
        if not hooks:
            return
        prev = runtime.engine.overhead_hook

        def dispatch(kind: str, who: int, duration: float) -> float:
            if prev is not None:
                duration = prev(kind, who, duration)
            for h in hooks:
                duration = h(kind, who, duration)
            return duration

        runtime.engine.overhead_hook = dispatch

    def describe(self) -> str:
        inj = ", ".join(type(i).__name__ for i in self.injectors) or "none"
        return f"FaultPlan(seed={self.seed}, trial={self.trial}, [{inj}])"
