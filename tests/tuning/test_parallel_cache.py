"""The parallel + cached tuning engine: digests, hits, equivalence."""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.config import HanConfig
from repro.faults import FaultPlan, OsNoise
from repro.hardware import tiny_cluster
from repro.tuning import (
    Autotuner,
    MeasurementCache,
    SearchSpace,
    measure_collective,
    measurement_key,
)
from repro.tuning.measure import resolve_plan
from repro.tuning.parallel import (
    MeasurePoint,
    TaskPoint,
    effective_workers,
    parallel_map,
    run_cached,
)

KiB = 1024


def machine():
    return tiny_cluster(num_nodes=2, ppn=2)


def config(**kw):
    return HanConfig(fs=64 * KiB, **kw)


def small_space():
    return SearchSpace(
        seg_sizes=(None, 64 * KiB),
        messages=(64 * KiB, 256 * KiB),
        adapt_algorithms=("chain",),
        inner_segs=(None,),
    )


def _key(nbytes=64 * KiB, cfg=None, mach=None, trials=1, trial_offset=0,
         plan=None, aggregate="median"):
    cfg = cfg or config()
    mach = mach or machine()
    return measurement_key(
        mach, "bcast", nbytes, cfg, 0, 1, None,
        resolve_plan(plan, cfg), trials, trial_offset, aggregate,
    )


def _key_in_subprocess(_):
    return _key()


# -- digest stability ---------------------------------------------------------------


def test_digest_deterministic_and_sensitive():
    assert _key() == _key()
    assert _key(nbytes=128 * KiB) != _key()
    assert _key(cfg=config(smod="solo")) != _key()
    assert _key(mach=tiny_cluster(num_nodes=2, ppn=1)) != _key()
    assert _key(trials=3) != _key()
    assert _key(aggregate="min") != _key()


def test_digest_stable_across_processes():
    with ProcessPoolExecutor(max_workers=1) as pool:
        child = list(pool.map(_key_in_subprocess, [0]))[0]
    assert child == _key()


def test_noise_free_key_ignores_trial_bookkeeping():
    # without injectors, every trial realization is identical, so sweeps
    # that differ only in the running trial counter share cache entries
    assert _key(trial_offset=5) == _key(trial_offset=0)
    plan = FaultPlan(seed=1).add(OsNoise(amplitude=0.5))
    assert _key(plan=plan, trial_offset=5) != _key(plan=plan, trial_offset=0)
    assert _key(plan=plan) != _key()


def test_config_seed_enters_key_only_via_resolved_plan():
    # the seed is not a tuned parameter; without a plan it cannot change
    # the simulation, so it must not fragment the cache
    assert _key(cfg=config(seed=1)) == _key(cfg=config(seed=2))
    plan = FaultPlan().add(OsNoise(amplitude=0.5))  # seed resolves from config
    assert _key(cfg=config(seed=1), plan=plan) != _key(cfg=config(seed=2), plan=plan)


# -- cache behaviour ----------------------------------------------------------------


def test_cache_hit_replays_measurement_exactly(tmp_path):
    cache = MeasurementCache(tmp_path)
    cold = measure_collective(machine(), "bcast", 64 * KiB, config(), cache=cache)
    assert cache.stats()["misses"] == 1 and cache.stats()["stores"] == 1
    warm = measure_collective(machine(), "bcast", 64 * KiB, config(), cache=cache)
    assert cache.stats()["hits"] == 1
    assert warm == cold  # time, per_rank, sim_cost, spread — everything


def test_cache_persists_across_instances(tmp_path):
    a = MeasurementCache(tmp_path)
    cold = measure_collective(machine(), "bcast", 64 * KiB, config(), cache=a)
    b = MeasurementCache(tmp_path)  # fresh handle, e.g. a new process
    warm = measure_collective(machine(), "bcast", 64 * KiB, config(), cache=b)
    assert b.stats() == {
        "hits": 1, "misses": 0, "stores": 0, "hit_rate": 1.0, "persistent": True,
    }
    assert warm == cold
    assert len(b) == 1
    # entries are plain JSON on disk — inspectable, diffable
    files = list(tmp_path.glob("*/*.json"))
    assert len(files) == 1
    assert json.loads(files[0].read_text())["__kind__"] == "measure"


def test_memory_cache_without_path():
    cache = MeasurementCache()
    measure_collective(machine(), "bcast", 64 * KiB, config(), cache=cache)
    measure_collective(machine(), "bcast", 64 * KiB, config(), cache=cache)
    assert cache.stats()["hits"] == 1
    assert cache.stats()["persistent"] is False


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = MeasurementCache(tmp_path)
    measure_collective(machine(), "bcast", 64 * KiB, config(), cache=cache)
    for f in tmp_path.glob("*/*.json"):
        f.write_text("{ torn write")
    again = MeasurementCache(tmp_path)
    meas = measure_collective(machine(), "bcast", 64 * KiB, config(), cache=again)
    assert again.stats()["misses"] == 1  # fell back to simulating
    assert meas.time > 0


# -- parallel equivalence -----------------------------------------------------------


def exhaustive_points():
    plan = FaultPlan(seed=7).add(OsNoise(amplitude=0.3))
    points, offset = [], 0
    for m in (64 * KiB, 256 * KiB):
        for cfg in small_space().configs():
            points.append(
                MeasurePoint(
                    machine=machine(), coll="allreduce", nbytes=m, config=cfg,
                    fault_plan=plan, trials=2, trial_offset=offset,
                )
            )
            offset += 2
    return points


def test_pool_results_identical_to_serial():
    points = exhaustive_points()
    serial = [p.run() for p in points]
    # cap_to_cores=False forces a real pool even on single-core CI boxes
    pooled = parallel_map(points, workers=2, cap_to_cores=False)
    assert pooled == serial


def test_task_points_pool_identical_to_serial():
    points = [
        TaskPoint(machine=machine(), coll="allreduce", config=cfg,
                  seg_bytes=64 * KiB, warm_iters=4)
        for cfg in small_space().configs()
        if cfg.fs is not None
    ]
    serial = [p.run() for p in points]
    pooled = parallel_map(points, workers=2, cap_to_cores=False)
    for s, p in zip(serial, pooled):
        assert TaskPoint.to_doc(s) == TaskPoint.to_doc(p)


def test_autotuner_parallel_and_cached_runs_bit_identical(tmp_path):
    plan = FaultPlan(seed=3).add(OsNoise(amplitude=0.4))

    def tune(**kw):
        return Autotuner(
            machine(), space=small_space(), fault_plan=plan, trials=2, **kw
        ).tune(colls=("allreduce",), method="exhaustive")

    serial = tune()
    parallel = tune(workers=2)
    cached_cold = tune(cache=MeasurementCache(tmp_path))
    cached_warm = tune(cache=MeasurementCache(tmp_path), workers=2)
    for other in (parallel, cached_cold, cached_warm):
        assert other.candidates == serial.candidates
        assert other.table.entries == serial.table.entries
        assert other.tuning_cost == serial.tuning_cost
        assert other.searches == serial.searches


def test_task_method_parallel_and_cached_runs_bit_identical(tmp_path):
    def tune(**kw):
        return Autotuner(machine(), space=small_space(), **kw).tune(
            colls=("allreduce",), method="task"
        )

    serial = tune()
    parallel = tune(workers=2)
    warm = tune(cache=MeasurementCache(tmp_path))
    warm2 = tune(cache=MeasurementCache(tmp_path))
    for other in (parallel, warm, warm2):
        assert other.candidates == serial.candidates
        assert other.table.entries == serial.table.entries
        assert other.tuning_cost == pytest.approx(serial.tuning_cost, rel=1e-12)


def test_zero_workers_is_the_serial_fallback():
    points = exhaustive_points()[:2]
    assert effective_workers(0, len(points)) == 0
    assert effective_workers(1, len(points)) == 1
    assert effective_workers(8, 1) == 1  # one point never needs a pool
    assert parallel_map(points, workers=0) == [p.run() for p in points]
    assert run_cached(points, workers=0) == [p.run() for p in points]


def test_run_cached_mixes_hits_and_misses_in_order():
    points = exhaustive_points()[:4]
    cache = MeasurementCache()
    # pre-warm only points 1 and 3
    for i in (1, 3):
        cache.put(points[i].cache_key(), points[i].to_doc(points[i].run()))
    results = run_cached(points, cache=cache)
    assert cache.stats()["hits"] == 2 and cache.stats()["misses"] == 2
    assert results == [p.run() for p in points]  # order preserved
