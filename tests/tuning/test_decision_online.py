"""Tests for the interval decision rules and the online (STAR-MPI) tuner."""

import math

import numpy as np
import pytest

from repro.core import HanConfig
from repro.hardware import tiny_cluster
from repro.mpi import MPIRuntime, SUM
from repro.tuning import LookupTable
from repro.tuning.decision_tree import DecisionRules, compile_rules
from repro.tuning.online import OnlineTuner

KiB, MiB = 1024, 1024 * 1024

SMALL = HanConfig(fs=None)
MID = HanConfig(fs=256 * KiB, imod="adapt", smod="sm", ibalg="binary",
                iralg="binary")
BIG = HanConfig(fs=2 * MiB, imod="adapt", smod="solo", ibalg="chain",
                iralg="chain")


def sample_table():
    t = LookupTable()
    sizes = [2.0 ** k for k in range(10, 26)]  # 1KB .. 32MB
    for m in sizes:
        if m <= 64 * KiB:
            cfg = SMALL
        elif m <= 2 * MiB:
            cfg = MID
        else:
            cfg = BIG
        t.put("bcast", 8, 4, m, cfg)
    return t


class TestDecisionRules:
    def test_compiles_to_three_intervals(self):
        rules = compile_rules(sample_table())
        assert rules.num_rules == 3
        assert rules.compression > 5

    def test_decisions_match_table_on_samples(self):
        table = sample_table()
        rules = compile_rules(table)
        for (t, n, p, m), cfg in table.entries.items():
            assert rules.decide(n, p, m, t) == cfg, m

    def test_interval_boundaries_are_geometric_means(self):
        rules = compile_rules(sample_table())
        band = rules.bands[("bcast", 8, 4)]
        # boundary between 64KB (SMALL) and 128KB (MID) samples
        assert band.uppers[0] == pytest.approx(
            math.sqrt(64 * KiB * 128 * KiB)
        )
        assert band.uppers[-1] == math.inf

    def test_unsampled_sizes_get_nearest_interval(self):
        rules = compile_rules(sample_table())
        assert rules.decide(8, 4, 3 * KiB, "bcast") == SMALL
        assert rules.decide(8, 4, 1 * MiB, "bcast") == MID
        assert rules.decide(8, 4, 256 * MiB, "bcast") == BIG

    def test_nearest_geometry_fallback(self):
        rules = compile_rules(sample_table())
        assert rules.decide(9, 5, 16 * MiB, "bcast") == BIG

    def test_unknown_collective_default(self):
        rules = compile_rules(sample_table())
        cfg = rules.decide(8, 4, 1 * MiB, "allreduce")
        assert isinstance(cfg, HanConfig)

    def test_save_load_roundtrip(self, tmp_path):
        rules = compile_rules(sample_table())
        path = tmp_path / "rules.json"
        rules.save(path)
        loaded = DecisionRules.load(path)
        assert loaded.num_rules == rules.num_rules
        for m in (4 * KiB, 1 * MiB, 16 * MiB):
            assert loaded.decide(8, 4, m, "bcast") == rules.decide(
                8, 4, m, "bcast"
            )

    def test_load_rejects_bad_version(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"version": 9, "bands": []}')
        with pytest.raises(ValueError):
            DecisionRules.load(p)


class TestLookupTieBreaking:
    """decide() must not depend on dict insertion order (save/load reorders)."""

    def build(self, order):
        # two samples equidistant (log-scale) from a 2 MiB query
        t = LookupTable()
        samples = {1 * MiB: MID, 4 * MiB: BIG}
        for m in order:
            t.put("bcast", 8, 4, m, samples[m])
        return t

    def test_tie_breaks_on_canonical_key_not_insertion_order(self):
        fwd = self.build([1 * MiB, 4 * MiB])
        rev = self.build([4 * MiB, 1 * MiB])
        assert fwd.decide(8, 4, 2 * MiB, "bcast") == MID  # smaller key wins
        assert rev.decide(8, 4, 2 * MiB, "bcast") == MID

    def test_decide_survives_save_load_roundtrip(self, tmp_path):
        # save() sorts rows, so a fresh table and its round-trip used to
        # hold the same entries in different insertion order — and could
        # pick different configs for tied queries
        fresh = self.build([4 * MiB, 1 * MiB])
        fresh.save(tmp_path / "t.json")
        loaded = LookupTable.load(tmp_path / "t.json")
        assert loaded.entries == fresh.entries
        for m in (512 * KiB, 1 * MiB, 2 * MiB, 3 * MiB, 8 * MiB):
            for n, p in ((8, 4), (4, 8), (6, 6)):
                assert loaded.decide(n, p, m, "bcast") == fresh.decide(
                    n, p, m, "bcast"
                ), (n, p, m)

    def test_geometry_ties_also_canonical(self):
        t = LookupTable()
        # (4, 8) and (16, 2) are log-equidistant from a (8, 4) query
        t.put("bcast", 16, 2, 1 * MiB, BIG)
        t.put("bcast", 4, 8, 1 * MiB, MID)
        assert t.decide(8, 4, 1 * MiB, "bcast") == MID  # kn=4 < kn=16


class TestOnlineTuner:
    CANDIDATES = [
        HanConfig(fs=None, imod="libnbc", smod="sm"),
        HanConfig(fs=128 * KiB, imod="adapt", smod="sm", ibalg="chain",
                  iralg="chain", ibs=64 * KiB, irs=64 * KiB),
    ]

    def run_calls(self, tuner, ncalls, nbytes=512 * KiB):
        machine = tiny_cluster(num_nodes=3, ppn=2)
        runtime = MPIRuntime(machine)

        def prog(comm):
            for _ in range(ncalls):
                yield from tuner.bcast(comm, nbytes)

        runtime.run(prog)
        return runtime.engine.now

    def test_needs_candidates(self):
        with pytest.raises(ValueError):
            OnlineTuner(candidates=[])

    def test_converges_after_exploration(self):
        tuner = OnlineTuner(candidates=self.CANDIDATES,
                            trials_per_candidate=2)
        nbytes = 512 * KiB
        assert not tuner.converged("bcast", nbytes)
        self.run_calls(tuner, ncalls=tuner.total_trials + 1, nbytes=nbytes)
        assert tuner.converged("bcast", nbytes)
        assert tuner.decision("bcast", nbytes) in self.CANDIDATES

    def test_locks_the_faster_candidate(self):
        tuner = OnlineTuner(candidates=self.CANDIDATES)
        nbytes = 512 * KiB
        self.run_calls(tuner, ncalls=len(self.CANDIDATES) + 2, nbytes=nbytes)
        locked = tuner.decision("bcast", nbytes)
        # measure both candidates offline and check the pick
        from repro.tuning import measure_collective

        machine = tiny_cluster(num_nodes=3, ppn=2)
        times = {
            cfg.key(): measure_collective(machine, "bcast", nbytes, cfg).time
            for cfg in self.CANDIDATES
        }
        assert times[locked.key()] == min(times.values())

    def test_buckets_are_independent(self):
        tuner = OnlineTuner(candidates=self.CANDIDATES)
        self.run_calls(tuner, ncalls=4, nbytes=512 * KiB)
        assert tuner.converged("bcast", 512 * KiB)
        assert not tuner.converged("bcast", 4 * KiB)

    def test_allreduce_path(self):
        tuner = OnlineTuner(candidates=self.CANDIDATES)
        machine = tiny_cluster(num_nodes=2, ppn=2)
        runtime = MPIRuntime(machine)
        n = 64

        def prog(comm):
            outs = []
            for _ in range(4):
                out = yield from tuner.allreduce(
                    comm, nbytes=n * 8,
                    payload=np.ones(n) * (comm.rank + 1), op=SUM,
                )
                outs.append(out)
            return outs

        results = runtime.run(prog)
        want = np.ones(n) * sum(r + 1 for r in range(4))
        for outs in results:
            for out in outs:
                np.testing.assert_allclose(out, want)
        assert tuner.converged("allreduce", n * 8)
