"""Repeated-trial measurement and confidence-aware selection."""

import pytest

from repro.core.config import HanConfig
from repro.faults import FaultPlan, OsNoise
from repro.hardware import tiny_cluster
from repro.tuning import Autotuner, SearchSpace, measure_collective

KiB = 1024


def machine():
    return tiny_cluster(num_nodes=2, ppn=2)


def config(seed=None):
    return HanConfig(
        fs=64 * KiB, imod="adapt", smod="sm", ibalg="chain", iralg="chain",
        seed=seed,
    )


def noisy_plan(seed=None, amplitude=0.5):
    return FaultPlan(seed=seed).add(OsNoise(amplitude=amplitude))


# -- measure_collective ------------------------------------------------------------


def test_single_trial_without_plan_matches_legacy_shape():
    m = measure_collective(machine(), "allreduce", 64 * KiB, config())
    assert m.trial_times == (m.time,)
    assert m.spread == 0.0
    assert m.time == max(m.per_rank)


def test_trials_collect_independent_samples_and_median():
    m = measure_collective(
        machine(), "allreduce", 64 * KiB, config(),
        fault_plan=noisy_plan(seed=5), trials=5,
    )
    assert len(m.trial_times) == 5
    assert len(set(m.trial_times)) == 5  # independent realizations
    ordered = sorted(m.trial_times)
    assert m.time == pytest.approx(ordered[2])  # the median
    assert m.spread > 0.0
    # sim_cost accounts for every repeated run
    one = measure_collective(
        machine(), "allreduce", 64 * KiB, config(), fault_plan=noisy_plan(seed=5)
    )
    assert m.sim_cost > one.sim_cost


def test_spread_centers_on_median_of_trials_not_headline():
    # the MAD must be computed around the median of the trial times; the
    # old code centered it on the headline aggregate, so aggregate="min"
    # reported an inflated spread for the very same samples
    import statistics

    results = {}
    for agg in ("median", "min", "mean"):
        m = measure_collective(
            machine(), "allreduce", 64 * KiB, config(),
            fault_plan=noisy_plan(seed=11), trials=5, aggregate=agg,
        )
        results[agg] = m
        center = statistics.median(m.trial_times)
        want = statistics.median(abs(x - center) for x in m.trial_times)
        assert m.spread == pytest.approx(want), agg
    # same seed, same samples -> same dispersion whatever the headline
    assert len({tuple(m.trial_times) for m in results.values()}) == 1
    assert len({m.spread for m in results.values()}) == 1


def test_median_rejects_a_straggler_outlier():
    # rare large straggler: most trials are clean, the median stays at
    # the clean time while min/mean react
    plan = FaultPlan(seed=0).add(OsNoise(amplitude=2.0, prob=0.1))
    clean = measure_collective(machine(), "allreduce", 64 * KiB, config())
    med = measure_collective(
        machine(), "allreduce", 64 * KiB, config(), fault_plan=plan, trials=5
    )
    worst = max(med.trial_times)
    assert med.time < worst  # the outlier did not become the verdict
    assert med.time == pytest.approx(clean.time, rel=0.35)


def test_plan_seed_resolves_from_config_seed():
    a = measure_collective(
        machine(), "allreduce", 64 * KiB, config(seed=123),
        fault_plan=noisy_plan(), trials=2,
    )
    b = measure_collective(
        machine(), "allreduce", 64 * KiB, config(seed=123),
        fault_plan=noisy_plan(), trials=2,
    )
    c = measure_collective(
        machine(), "allreduce", 64 * KiB, config(seed=321),
        fault_plan=noisy_plan(), trials=2,
    )
    assert a.trial_times == b.trial_times
    assert a.trial_times != c.trial_times


def test_trial_offset_shifts_realizations():
    a = measure_collective(
        machine(), "allreduce", 64 * KiB, config(),
        fault_plan=noisy_plan(seed=5), trials=3,
    )
    b = measure_collective(
        machine(), "allreduce", 64 * KiB, config(),
        fault_plan=noisy_plan(seed=5), trials=3, trial_offset=1,
    )
    assert a.trial_times[1:] == b.trial_times[:2]


def test_measure_validation():
    with pytest.raises(ValueError):
        measure_collective(machine(), "allreduce", 64 * KiB, config(), trials=0)
    with pytest.raises(ValueError):
        measure_collective(
            machine(), "allreduce", 64 * KiB, config(), aggregate="max"
        )


# -- Autotuner ---------------------------------------------------------------------


def small_space():
    return SearchSpace(
        seg_sizes=(64 * KiB,),
        messages=(128 * KiB,),
        adapt_algorithms=("chain", "binary"),
        inner_segs=(None,),
    )


def test_noisy_tuning_is_reproducible():
    plan = noisy_plan(seed=9)
    reports = [
        Autotuner(
            machine(), space=small_space(), fault_plan=plan, trials=3
        ).tune(colls=("allreduce",), method="exhaustive")
        for _ in range(2)
    ]
    c0 = reports[0].candidates[("allreduce", 128 * KiB)]
    c1 = reports[1].candidates[("allreduce", 128 * KiB)]
    assert c0 == c1


def test_confident_selection_penalizes_spread():
    tuner = Autotuner(
        machine(), space=small_space(), fault_plan=noisy_plan(seed=9),
        trials=3, selection="confident",
    )
    report = tuner.tune(colls=("allreduce",), method="exhaustive")
    assert report.table.get("allreduce", 2, 2, 128 * KiB) is not None
    # candidate list still carries the aggregated time per config
    cands = report.candidates[("allreduce", 128 * KiB)]
    assert len(cands) >= 2 and all(t > 0 for _c, t in cands)


def test_bad_selection_rejected():
    tuner = Autotuner(machine(), space=small_space(), selection="optimistic")
    with pytest.raises(ValueError):
        tuner.tune(colls=("allreduce",), method="exhaustive")


def test_noise_free_tuning_unchanged_by_new_knobs():
    base = Autotuner(machine(), space=small_space()).tune(
        colls=("allreduce",), method="exhaustive"
    )
    with_plan_obj = Autotuner(
        machine(), space=small_space(), fault_plan=FaultPlan(), trials=1
    ).tune(colls=("allreduce",), method="exhaustive")
    assert base.candidates == with_plan_obj.candidates
    assert base.tuning_cost == with_plan_obj.tuning_cost
