"""BanditAllocator: successive halving, degenerate cases, Autotuner parity."""

import pytest

from repro.core.config import HanConfig
from repro.faults import FaultPlan, MessageJitter, OsNoise
from repro.hardware import tiny_cluster
from repro.tuning import Autotuner, BanditAllocator, SearchSpace
from repro.tuning.autotuner import ALLOCATIONS

KiB = 1024


def _scripted(values):
    """A sample() stub replaying fixed per-arm time series."""
    calls = []

    def sample(requests):
        calls.append(list(requests))
        out = []
        for i, start, count in requests:
            out.append(values[i][start:start + count])
        return out

    sample.calls = calls
    return sample


# -- allocator unit behaviour -------------------------------------------------------


def test_validation():
    with pytest.raises(ValueError, match="trials"):
        BanditAllocator(trials=0)
    with pytest.raises(ValueError, match="eta"):
        BanditAllocator(trials=3, eta=1)
    with pytest.raises(ValueError, match="min_rung"):
        BanditAllocator(trials=3, min_rung=4)
    with pytest.raises(ValueError, match="selection"):
        BanditAllocator(trials=3, selection="hopeful")
    with pytest.raises(ValueError, match="candidate"):
        BanditAllocator(trials=3).run(0, _scripted([]))


def test_single_candidate_spends_only_the_first_rung():
    sample = _scripted([[5.0] * 8])
    result = BanditAllocator(trials=8, min_rung=1).run(1, sample)
    assert result.winner == 0
    assert result.trials_spent == 1  # one sample, then the race is over
    assert result.samples == ((5.0,),)


def test_all_tied_candidates_break_toward_enumeration_order():
    values = [[2.0] * 6 for _ in range(4)]
    result = BanditAllocator(trials=6).run(4, _scripted(values))
    assert result.winner == 0  # the fixed path's min() picks index 0 too
    assert result.trials_spent < 4 * 6  # and the race still saved budget


def test_zero_noise_eliminates_to_exact_ties_at_rung_two():
    # constant arms: after 2 samples every spread is 0, so the band rule
    # drops everything that is not an exact tie of the leader
    values = [[3.0] * 5, [1.0] * 5, [4.0] * 5, [1.5] * 5]
    result = BanditAllocator(trials=5).run(4, _scripted(values))
    assert result.winner == 1
    # rung 0: 4 samples; rung 1: top-2 survivors add one each
    assert result.trials_spent == 6
    assert [len(s) for s in result.samples] == [1, 2, 1, 2]
    # at rung 1 arm 3 (1.5 > 1.0, zero spread) is band-dominated and the
    # race ends with arm 1 alone — nobody ever burns the full budget
    assert result.rungs[-1]["eliminated"] == [3]


def test_noisy_arms_survive_while_bands_overlap():
    # arms 0/1 overlap each other's bands and race to the full budget;
    # arm 2 is hopeless and goes at the first cap
    values = [
        [1.0, 1.2, 0.9, 1.1, 1.0, 1.05],
        [1.1, 0.95, 1.3, 1.4, 1.5, 1.6],
        [9.0, 9.5, 9.2, 9.1, 9.3, 9.4],
    ]
    # min_rung=2 so MAD bands exist from the first rung on
    result = BanditAllocator(trials=6, eta=2, min_rung=2).run(
        3, _scripted(values)
    )
    assert result.winner == 0
    assert len(result.samples[2]) == 2  # the loser never got the full budget
    assert result.rungs[0]["eliminated"] == [2]
    assert result.trials_spent < 3 * 6


def test_sample_length_mismatch_is_an_error():
    def bad(requests):
        return [[1.0] for _ in requests]  # always one sample

    with pytest.raises(ValueError, match="requested"):
        BanditAllocator(trials=4, min_rung=2).run(2, bad)


def test_min_rung_equal_trials_degenerates_to_fixed():
    values = [[2.0, 2.1, 1.9], [1.0, 1.1, 0.9]]
    result = BanditAllocator(trials=3, min_rung=3).run(2, _scripted(values))
    assert result.winner == 1
    assert result.trials_spent == 6  # everyone got the full budget


def test_confident_selection_penalizes_spread():
    # arm 0: better median, wild spread; arm 1: slightly worse median,
    # tight — "confident" must prefer arm 1, like the fixed path.
    # min_rung=2 so the spread is observable before the first cut.
    values = [
        [0.1, 2.9],
        [1.6, 1.65],
    ]
    best = BanditAllocator(trials=2, min_rung=2, selection="best").run(
        2, _scripted(values)
    )
    conf = BanditAllocator(trials=2, min_rung=2, selection="confident").run(
        2, _scripted(values)
    )
    assert best.winner == 0
    assert conf.winner == 1


# -- Autotuner integration ----------------------------------------------------------


def _machine():
    return tiny_cluster(num_nodes=2, ppn=2)


def _space():
    return SearchSpace(
        seg_sizes=(None, 64 * KiB),
        messages=(64 * KiB, 256 * KiB),
        adapt_algorithms=("chain",),
        inner_segs=(None,),
    )


def test_allocation_validated():
    assert set(ALLOCATIONS) == {"fixed", "bandit"}
    tuner = Autotuner(machine=_machine(), space=_space(), allocation="greedy")
    with pytest.raises(ValueError, match="allocation"):
        tuner.tune(colls=("bcast",), method="exhaustive")


def test_noise_free_bandit_matches_fixed_winner_bit_identically():
    fixed = Autotuner(
        machine=_machine(), space=_space(), trials=3, allocation="fixed"
    ).tune(colls=("bcast",), method="exhaustive")
    bandit = Autotuner(
        machine=_machine(), space=_space(), trials=3, allocation="bandit"
    ).tune(colls=("bcast",), method="exhaustive")
    assert bandit.table.entries == fixed.table.entries
    assert bandit.trials_spent < fixed.trials_spent
    assert fixed.trials_spent == fixed.searches * 3


def test_bandit_under_noise_spends_less_and_stays_deterministic():
    plan = FaultPlan(seed=7).add(
        OsNoise(amplitude=0.5), MessageJitter(amplitude=0.3)
    )

    def tune(allocation):
        return Autotuner(
            machine=_machine(), space=_space(), trials=5,
            fault_plan=plan, selection="confident", allocation=allocation,
        ).tune(colls=("bcast",), method="exhaustive")

    fixed = tune("fixed")
    bandit = tune("bandit")
    again = tune("bandit")
    assert bandit.table.entries == again.table.entries  # deterministic
    assert bandit.trials_spent == again.trials_spent
    assert bandit.trials_spent <= 0.7 * fixed.trials_spent  # the CI gate
    assert set(bandit.candidates) == set(fixed.candidates)


def test_bandit_tuning_under_load():
    from repro.tenancy import traffic_preset

    plan = traffic_preset("allreduce_sweep").with_seed(11)
    report = Autotuner(
        machine=_machine(), space=_space(), trials=3,
        traffic_plan=plan, allocation="bandit",
    ).tune(colls=("bcast",), method="exhaustive")
    again = Autotuner(
        machine=_machine(), space=_space(), trials=3,
        traffic_plan=plan, allocation="bandit",
    ).tune(colls=("bcast",), method="exhaustive")
    assert report.table.entries == again.table.entries
    assert report.tuning_cost == again.tuning_cost
    quiet = Autotuner(
        machine=_machine(), space=_space(), trials=3, allocation="bandit",
    ).tune(colls=("bcast",), method="exhaustive")
    # loaded tuning bills the contended (longer) simulated spans
    assert report.tuning_cost > quiet.tuning_cost
