"""Smoke tests for ``python -m repro.tuning.cli``."""

import json

import pytest

from repro.tenancy import traffic_preset
from repro.tuning.cli import main


def test_run_serial_and_warm_cache(tmp_path, capsys):
    cache = tmp_path / "cache"
    table = tmp_path / "table.json"
    argv = [
        "run", "--machine", "tiny", "--nodes", "2", "--ppn", "2",
        "--colls", "bcast", "--method", "task", "--space", "small",
        "--cache", str(cache), "--out", str(table),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "hit rate" in cold and table.exists()
    doc = json.loads(table.read_text())
    assert doc["version"] == 1 and doc["rows"]

    assert main(argv) == 0  # second run replays entirely from the cache
    warm = capsys.readouterr().out
    assert "0 misses" in warm
    # decisions don't depend on the cache: identical table both times
    assert json.loads(table.read_text()) == doc


def test_run_defaults_to_preset_geometry(capsys):
    assert main(["run", "--machine", "tiny", "--colls", "bcast",
                 "--method", "task"]) == 0
    assert "tiny_cluster 2x2" in capsys.readouterr().out


def test_run_with_workers(capsys):
    assert main(["run", "--machine", "tiny", "--colls", "bcast",
                 "--method", "exhaustive", "--workers", "2"]) == 0
    assert "workers=2" in capsys.readouterr().out


def test_no_cache_forces_cold_run(tmp_path, capsys):
    argv = ["run", "--machine", "tiny", "--colls", "bcast", "--method", "task",
            "--cache", str(tmp_path / "c")]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv + ["--no-cache"]) == 0
    assert "cache:" not in capsys.readouterr().out


def test_inspect(tmp_path, capsys):
    cache = tmp_path / "cache"
    main(["run", "--machine", "tiny", "--colls", "bcast", "--method", "task",
          "--cache", str(cache)])
    capsys.readouterr()
    assert main(["inspect", "--cache", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and "taskbench: " in out


def test_inspect_missing_cache(tmp_path, capsys):
    assert main(["inspect", "--cache", str(tmp_path / "nope")]) == 1


def test_run_under_traffic_with_bandit_allocation(capsys):
    argv = ["run", "--machine", "tiny", "--colls", "bcast",
            "--method", "exhaustive", "--trials", "3",
            "--allocation", "bandit",
            "--traffic-plan", "allreduce_sweep", "--traffic-seed", "11"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "exhaustive/bandit" in out
    assert "traffic=allreduce_sweep" in out
    assert "trials_spent=" in out


def test_run_accepts_traffic_plan_json_file(tmp_path, capsys):
    doc = traffic_preset("bcast_periodic").with_seed(5).to_doc()
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(doc))
    assert main(["run", "--machine", "tiny", "--colls", "bcast",
                 "--method", "exhaustive", "--traffic-plan", str(path)]) == 0
    assert f"traffic={path}" in capsys.readouterr().out


def test_unknown_traffic_plan_is_a_clean_error(capsys):
    with pytest.raises(SystemExit, match="neither a preset"):
        main(["run", "--machine", "tiny", "--colls", "bcast",
              "--traffic-plan", "no_such_preset"])


def test_bandit_subcommand_writes_gated_artifact(tmp_path, capsys):
    out = tmp_path / "bandit.json"
    assert main(["bandit", "--machine", "tiny", "--nodes", "2", "--ppn", "2",
                 "--colls", "bcast", "--trials", "4", "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["passed"] is True
    assert doc["gates"]["savings_ok"] and doc["gates"]["agreement_ok"]
    assert doc["trials_spent"]["bandit"] < doc["trials_spent"]["fixed"]
    assert doc["savings_pct"] >= doc["gates"]["min_savings_pct"]
    assert doc["truth_agreement"]["bandit"] >= doc["truth_agreement"]["fixed"]
    assert doc["scenario"]["seed"] == 2026


def test_bandit_gate_failure_is_exit_one(tmp_path, capsys):
    # an impossible savings bar: even a perfect bandit can't save 99.9%
    assert main(["bandit", "--machine", "tiny", "--nodes", "2", "--ppn", "2",
                 "--colls", "bcast", "--trials", "2", "--min-savings", "0.999",
                 "--out", str(tmp_path / "b.json")]) == 1


def test_bench_writes_artifact(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert main(["bench", "--machine", "tiny", "--nodes", "2", "--ppn", "2",
                 "--workers", "2", "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["results_bit_identical"] is True
    assert set(doc["wallclock_s"]) == {"serial_cold", "parallel_cold",
                                       "warm_cache"}
    assert doc["speedup_vs_serial_cold"]["warm_cache"] > 1.0
    assert doc["cache"]["hits"] == doc["sweep"]["points"]
