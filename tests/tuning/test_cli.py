"""Smoke tests for ``python -m repro.tuning.cli``."""

import json

from repro.tuning.cli import main


def test_run_serial_and_warm_cache(tmp_path, capsys):
    cache = tmp_path / "cache"
    table = tmp_path / "table.json"
    argv = [
        "run", "--machine", "tiny", "--nodes", "2", "--ppn", "2",
        "--colls", "bcast", "--method", "task", "--space", "small",
        "--cache", str(cache), "--out", str(table),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "hit rate" in cold and table.exists()
    doc = json.loads(table.read_text())
    assert doc["version"] == 1 and doc["rows"]

    assert main(argv) == 0  # second run replays entirely from the cache
    warm = capsys.readouterr().out
    assert "0 misses" in warm
    # decisions don't depend on the cache: identical table both times
    assert json.loads(table.read_text()) == doc


def test_run_defaults_to_preset_geometry(capsys):
    assert main(["run", "--machine", "tiny", "--colls", "bcast",
                 "--method", "task"]) == 0
    assert "tiny_cluster 2x2" in capsys.readouterr().out


def test_run_with_workers(capsys):
    assert main(["run", "--machine", "tiny", "--colls", "bcast",
                 "--method", "exhaustive", "--workers", "2"]) == 0
    assert "workers=2" in capsys.readouterr().out


def test_no_cache_forces_cold_run(tmp_path, capsys):
    argv = ["run", "--machine", "tiny", "--colls", "bcast", "--method", "task",
            "--cache", str(tmp_path / "c")]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv + ["--no-cache"]) == 0
    assert "cache:" not in capsys.readouterr().out


def test_inspect(tmp_path, capsys):
    cache = tmp_path / "cache"
    main(["run", "--machine", "tiny", "--colls", "bcast", "--method", "task",
          "--cache", str(cache)])
    capsys.readouterr()
    assert main(["inspect", "--cache", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and "taskbench: " in out


def test_inspect_missing_cache(tmp_path, capsys):
    assert main(["inspect", "--cache", str(tmp_path / "nope")]) == 1


def test_bench_writes_artifact(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert main(["bench", "--machine", "tiny", "--nodes", "2", "--ppn", "2",
                 "--workers", "2", "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["results_bit_identical"] is True
    assert set(doc["wallclock_s"]) == {"serial_cold", "parallel_cold",
                                       "warm_cache"}
    assert doc["speedup_vs_serial_cold"]["warm_cache"] > 1.0
    assert doc["cache"]["hits"] == doc["sweep"]["points"]
