"""Tests for task benchmarking, the cost model and the autotuner."""

import numpy as np
import pytest

from repro.core import HanConfig
from repro.hardware import tiny_cluster
from repro.tuning import (
    Autotuner,
    SearchSpace,
    TaskBench,
    estimate_bcast,
    estimate_allreduce,
    measure_collective,
)

KiB, MiB = 1024, 1024 * 1024

MACHINE = tiny_cluster(num_nodes=4, ppn=4)
CFG = HanConfig(fs=128 * KiB, imod="adapt", smod="sm", ibalg="binary",
                iralg="binary")


@pytest.fixture(scope="module")
def bcast_costs():
    bench = TaskBench(MACHINE, warm_iters=8)
    return bench.bench_bcast_tasks(CFG, 128 * KiB)


@pytest.fixture(scope="module")
def allreduce_costs():
    bench = TaskBench(MACHINE, warm_iters=8)
    return bench.bench_allreduce_tasks(CFG, 128 * KiB)


class TestTaskBench:
    def test_ib0_positive_and_staggered(self, bcast_costs):
        ib0 = bcast_costs.ib0
        assert (ib0 > 0).all()
        # leaders finish ib(0) at *different* times (paper Fig 2 insight)
        assert ib0.max() > ib0.min()

    def test_sb_positive(self, bcast_costs):
        assert (bcast_costs.sb0 > 0).all()

    def test_overlap_significant_but_imperfect(self, bcast_costs):
        """Fig 2's green bars: max(ib,sb) <= concurrent <= ib+sb."""
        ib = bcast_costs.ib0.max()
        sb = bcast_costs.sb0.max()
        conc = bcast_costs.concurrent.max()
        assert conc < (ib + sb) * 1.001  # overlap is significant
        assert conc >= max(ib, sb) * 0.999  # but not better than perfect

    def test_sbib_stabilizes(self, bcast_costs):
        """Fig 3: after the pipeline warms up, sbib cost settles."""
        series = bcast_costs.sbib_series
        tail = series[:, -3:]
        spread = tail.max(axis=1) - tail.min(axis=1)
        assert (spread <= 0.25 * tail.mean(axis=1) + 1e-9).all()

    def test_sbib_at_least_sb(self, bcast_costs):
        # sbib contains sb plus an extra ib: it cannot be cheaper than
        # the pure intra broadcast it wraps.
        assert bcast_costs.sbib_stable.max() >= bcast_costs.sb0.max() * 0.9

    def test_allreduce_tasks_populated(self, allreduce_costs):
        assert (allreduce_costs.sr0 > 0).all()
        assert (allreduce_costs.irsr > 0).all()
        assert (allreduce_costs.ibirsr > 0).all()
        assert (allreduce_costs.sbibirsr_stable > 0).all()
        assert allreduce_costs.drain.shape[1] == 3

    def test_cost_accounting_accumulates(self):
        bench = TaskBench(MACHINE, warm_iters=4)
        assert bench.total_cost == 0
        bench.bench_bcast_tasks(CFG, 64 * KiB)
        c1 = bench.total_cost
        assert c1 > 0
        bench.bench_bcast_tasks(CFG, 128 * KiB)
        assert bench.total_cost > c1

    def test_ib_ir_overlap(self):
        """Fig 6: concurrent ib+ir is far below the serial sum."""
        bench = TaskBench(MACHINE, warm_iters=4)
        out = bench.bench_ib_ir_overlap(CFG, 512 * KiB)
        ib, ir, both = out["ib"].max(), out["ir"].max(), out["both"].max()
        assert both < (ib + ir) * 0.9
        assert both >= max(ib, ir) * 0.95


class TestCostModel:
    def test_estimate_scales_with_u(self, bcast_costs):
        e1 = estimate_bcast(bcast_costs, 128 * KiB)  # u = 1
        e8 = estimate_bcast(bcast_costs, 1 * MiB)  # u = 8
        e16 = estimate_bcast(bcast_costs, 2 * MiB)  # u = 16
        assert e1 < e8 < e16
        # steady-state slope: (e16 - e8) == 8 * sbib_s on the max leader
        assert (e16 - e8) == pytest.approx(
            8 * bcast_costs.sbib_stable.max(), rel=0.35
        )

    def test_bcast_model_close_to_measurement(self, bcast_costs):
        """The core claim of Fig 4: estimates track measurements."""
        for m in (1 * MiB, 4 * MiB):
            est = estimate_bcast(bcast_costs, m)
            meas = measure_collective(MACHINE, "bcast", m, CFG).time
            assert est == pytest.approx(meas, rel=0.30), (m, est, meas)

    def test_allreduce_model_close_to_measurement(self, allreduce_costs):
        """Fig 7's analogue."""
        for m in (1 * MiB, 4 * MiB):
            est = estimate_allreduce(allreduce_costs, m)
            meas = measure_collective(MACHINE, "allreduce", m, CFG).time
            assert est == pytest.approx(meas, rel=0.35), (m, est, meas)


def small_space():
    return SearchSpace(
        seg_sizes=(128 * KiB, 512 * KiB),
        messages=(64 * KiB, 1 * MiB, 4 * MiB),
        adapt_algorithms=("chain", "binary"),
        inner_segs=(None,),
    )


class TestAutotuner:
    @pytest.fixture(scope="class")
    def reports(self):
        tuner = Autotuner(MACHINE, space=small_space(), warm_iters=6)
        return {
            m: tuner.tune(colls=("bcast",), method=m)
            for m in ("exhaustive", "exhaustive+h", "task", "task+h")
        }

    def test_methods_fill_the_table(self, reports):
        for rep in reports.values():
            assert len(rep.table) == 3  # one entry per message size

    def test_task_method_is_much_cheaper(self, reports):
        """Fig 8: task-based tuning slashes the benchmark time."""
        assert reports["task"].tuning_cost < reports["exhaustive"].tuning_cost * 0.6

    def test_heuristics_cheapest(self, reports):
        assert (
            reports["task+h"].tuning_cost
            <= reports["task"].tuning_cost
        )
        assert (
            reports["exhaustive+h"].tuning_cost
            <= reports["exhaustive"].tuning_cost
        )

    def test_task_method_finds_near_optimal_configs(self, reports):
        """Fig 9: autotuned results track the exhaustive best."""
        exh = reports["exhaustive"]
        task = reports["task"]
        for m in (1 * MiB, 4 * MiB):
            best_cfg, best_time = exh.best("bcast", m)
            picked = task.table.get("bcast", MACHINE.num_nodes, MACHINE.ppn, m)
            picked_time = measure_collective(MACHINE, "bcast", m, picked).time
            assert picked_time <= best_time * 1.25, (
                m, picked.describe(), picked_time, best_cfg.describe(), best_time,
            )

    def test_exhaustive_median_worse_than_best(self, reports):
        """Fig 9's purple/orange gap: configuration choice matters."""
        cands = reports["exhaustive"].candidates[("bcast", 4 * MiB)]
        times = sorted(t for _c, t in cands)
        assert np.median(times) > times[0] * 1.1

    def test_bad_method_rejected(self):
        tuner = Autotuner(MACHINE, space=small_space())
        with pytest.raises(ValueError):
            tuner.tune(method="magic")

    def test_table_plugs_into_han_module(self, reports):
        from repro.core import HanModule
        from repro.mpi import MPIRuntime

        table = reports["task"].table
        han = HanModule(decision_fn=table.as_decision_fn())
        runtime = MPIRuntime(MACHINE)

        def prog(comm):
            yield from han.bcast(comm, nbytes=1 * MiB)

        runtime.run(prog)
        assert runtime.engine.now > 0

    def test_validate_model_rows(self):
        tuner = Autotuner(MACHINE, space=small_space(), warm_iters=4)
        rows = tuner.validate_model("bcast", 1 * MiB)
        assert len(rows) > 3
        for cfg, est, meas in rows:
            assert est > 0 and meas > 0
