"""Tests for task-based tuning of MPI_Reduce (the irsr stream)."""

import pytest

from repro.core import HanConfig
from repro.hardware import tiny_cluster
from repro.tuning import (
    Autotuner,
    SearchSpace,
    TaskBench,
    estimate_reduce,
    measure_collective,
)

KiB, MiB = 1024, 1024 * 1024
MACHINE = tiny_cluster(num_nodes=4, ppn=4)
CFG = HanConfig(fs=128 * KiB, imod="adapt", smod="sm", ibalg="binary",
                iralg="binary")


@pytest.fixture(scope="module")
def reduce_costs():
    bench = TaskBench(MACHINE, warm_iters=8)
    return bench.bench_reduce_tasks(CFG, 128 * KiB)


def test_reduce_tasks_populated(reduce_costs):
    assert (reduce_costs.sr0 > 0).all()
    assert (reduce_costs.irsr_stable > 0).all()
    assert (reduce_costs.drain > 0).all()


def test_irsr_stabilizes(reduce_costs):
    tail = reduce_costs.irsr_series[:, -3:]
    spread = tail.max(axis=1) - tail.min(axis=1)
    assert (spread <= 0.25 * tail.mean(axis=1) + 1e-12).all()


def test_estimate_scales_with_segments(reduce_costs):
    e1 = estimate_reduce(reduce_costs, 128 * KiB)
    e8 = estimate_reduce(reduce_costs, 1 * MiB)
    assert e1 < e8


def test_reduce_model_close_to_measurement(reduce_costs):
    for m in (1 * MiB, 4 * MiB):
        est = estimate_reduce(reduce_costs, m)
        meas = measure_collective(MACHINE, "reduce", m, CFG).time
        assert est == pytest.approx(meas, rel=0.30), (m, est, meas)


def test_autotuner_reduce_path():
    space = SearchSpace(
        seg_sizes=(128 * KiB, 512 * KiB),
        messages=(256 * KiB, 2 * MiB),
        adapt_algorithms=("binary",),
        inner_segs=(None,),
    )
    tuner = Autotuner(MACHINE, space=space, warm_iters=6)
    task = tuner.tune(colls=("reduce",), method="task")
    exh = tuner.tune(colls=("reduce",), method="exhaustive")
    assert len(task.table) == 2
    assert task.tuning_cost < exh.tuning_cost
    # the pick is near-optimal
    for m in space.messages:
        picked = task.table.get("reduce", MACHINE.num_nodes, MACHINE.ppn, m)
        t_pick = measure_collective(MACHINE, "reduce", m, picked).time
        _best_cfg, t_best = exh.best("reduce", m)
        assert t_pick <= t_best * 1.3
