"""Tests for search spaces, heuristics and the lookup table."""

import pytest

from repro.core import HanConfig
from repro.tuning import LookupTable, SearchSpace, prune_configs
from repro.tuning.costmodel import segments_for
from repro.tuning.heuristics import SOLO_MIN_SEG, chain_viable
from repro.tuning.space import TuningInputs

KiB, MiB = 1024, 1024 * 1024


class TestSearchSpace:
    def test_config_count_is_s_times_a_times_smods(self):
        space = SearchSpace.small()
        a = len(space.algorithm_axis())
        assert space.size() == len(space.seg_sizes) * a * len(space.smods)

    def test_algorithm_axis_includes_libnbc_single_point(self):
        axis = SearchSpace.small().algorithm_axis()
        libnbc = [pt for pt in axis if pt["imod"] == "libnbc"]
        assert len(libnbc) == 1
        assert libnbc[0]["ibalg"] is None

    def test_all_configs_valid(self):
        for cfg in SearchSpace.small().configs():
            assert isinstance(cfg, HanConfig)

    def test_messages_are_powers_of_two(self):
        space = SearchSpace.small()
        for m in space.messages:
            assert m & (int(m) - 1) == 0 if isinstance(m, int) else True

    def test_tuning_inputs_table1_fields(self):
        ti = TuningInputs(n=64, p=12, m=4 * MiB, t="bcast")
        assert (ti.n, ti.p, ti.m, ti.t) == (64, 12, 4 * MiB, "bcast")


class TestHeuristics:
    def test_solo_pruned_below_512k(self):
        small = HanConfig(fs=128 * KiB, smod="solo")
        big = HanConfig(fs=1 * MiB, smod="solo")
        kept = prune_configs([small, big])
        assert kept == [big]
        assert SOLO_MIN_SEG == 512 * KiB  # the paper's number

    def test_inner_seg_larger_than_fs_pruned(self):
        bad = HanConfig(fs=128 * KiB, imod="adapt", ibalg="chain", ibs=512 * KiB)
        assert prune_configs([bad]) == []

    def test_chain_needs_enough_segments(self):
        assert not chain_viable(256 * KiB, 128 * KiB, num_nodes=8)
        assert chain_viable(16 * MiB, 128 * KiB, num_nodes=8)
        chain = HanConfig(fs=128 * KiB, imod="adapt", ibalg="chain")
        assert prune_configs([chain], nbytes=256 * KiB, num_nodes=8) == []
        assert prune_configs([chain], nbytes=16 * MiB, num_nodes=8) == [chain]

    def test_fs_at_least_message_pruned_with_message_context(self):
        cfg = HanConfig(fs=1 * MiB, smod="solo")
        assert prune_configs([cfg], nbytes=64 * KiB, num_nodes=4) == []
        assert prune_configs([cfg], nbytes=16 * MiB, num_nodes=4) == [cfg]

    def test_sm_solo_partition_at_512k(self):
        sm_big = HanConfig(fs=1 * MiB, smod="sm")
        sm_small = HanConfig(fs=256 * KiB, smod="sm")
        assert prune_configs([sm_big]) == []  # SM pruned above 512KB
        assert prune_configs([sm_small]) == [sm_small]

    def test_heuristics_shrink_the_space(self):
        space = SearchSpace.small()
        full = space.configs()
        pruned = prune_configs(full, nbytes=1 * MiB, num_nodes=8)
        assert 0 < len(pruned) < len(full)


class TestSegmentsFor:
    def test_basic(self):
        assert segments_for(1 * MiB, 128 * KiB) == 8
        assert segments_for(100, None) == 1
        assert segments_for(100, 200) == 1
        assert segments_for(130, 64) == 3


class TestLookupTable:
    def test_put_get_roundtrip(self):
        t = LookupTable()
        cfg = HanConfig(fs=128 * KiB)
        t.put("bcast", 8, 4, 1 * MiB, cfg)
        assert t.get("bcast", 8, 4, 1 * MiB) == cfg
        assert t.get("bcast", 8, 4, 2 * MiB) is None

    def test_decide_exact_and_nearest_message(self):
        t = LookupTable()
        small_cfg = HanConfig(fs=None)
        big_cfg = HanConfig(fs=1 * MiB, imod="adapt", ibalg="chain")
        t.put("bcast", 8, 4, 4 * KiB, small_cfg)
        t.put("bcast", 8, 4, 4 * MiB, big_cfg)
        assert t.decide(8, 4, 4 * KiB, "bcast") == small_cfg
        assert t.decide(8, 4, 8 * KiB, "bcast") == small_cfg  # nearest
        assert t.decide(8, 4, 16 * MiB, "bcast") == big_cfg

    def test_decide_nearest_geometry(self):
        t = LookupTable()
        cfg8 = HanConfig(fs=None)
        cfg64 = HanConfig(fs=1 * MiB, imod="adapt", ibalg="binary")
        t.put("bcast", 8, 4, 1 * MiB, cfg8)
        t.put("bcast", 64, 4, 1 * MiB, cfg64)
        assert t.decide(10, 4, 1 * MiB, "bcast") == cfg8
        assert t.decide(48, 4, 1 * MiB, "bcast") == cfg64

    def test_decide_unknown_collective_falls_back(self):
        t = LookupTable()
        cfg = t.decide(8, 4, 1 * MiB, "bcast")
        assert isinstance(cfg, HanConfig)

    def test_save_load_roundtrip(self, tmp_path):
        t = LookupTable()
        t.put("bcast", 8, 4, 4 * KiB, HanConfig(fs=None))
        t.put(
            "allreduce", 8, 4, 4 * MiB,
            HanConfig(fs=1 * MiB, imod="adapt", smod="solo",
                      ibalg="binary", iralg="chain", ibs=256 * KiB),
        )
        path = tmp_path / "table.json"
        t.save(path)
        loaded = LookupTable.load(path)
        assert len(loaded) == 2
        assert loaded.entries == t.entries

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "rows": []}')
        with pytest.raises(ValueError, match="version"):
            LookupTable.load(path)
