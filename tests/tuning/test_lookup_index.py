"""Lookup table: per-collective index, staleness rebuild, integrity stamp."""

import json
import math

import pytest

from repro.core.config import HanConfig
from repro.tuning.lookup import LookupTable, config_to_dict

KiB = 1024


def _table():
    table = LookupTable()
    for i, coll in enumerate(("bcast", "allreduce", "reduce")):
        for n in (2, 4):
            for k in range(4):
                table.put(coll, n, 2, (16 << (2 * k)) * KiB,
                          HanConfig(fs=(64 << i) * KiB))
    return table


def _brute_force(table, n, p, m, t):
    """The pre-index linear scan, as the equivalence oracle."""
    candidates = [k for k in table.entries if k[0] == t]
    if not candidates:
        return None

    def key_distance(k):
        _t, kn, kp, km = k
        dn = abs(math.log2(max(kn, 1)) - math.log2(max(n, 1)))
        dp = abs(math.log2(max(kp, 1)) - math.log2(max(p, 1)))
        dm = abs(math.log2(max(km, 1.0)) - math.log2(max(m, 1.0)))
        return (dn + dp, dm, kn, kp, km)

    return table.entries[min(candidates, key=key_distance)]


def test_indexed_decide_matches_linear_scan():
    table = _table()
    for t in ("bcast", "allreduce", "reduce"):
        for n in (1, 2, 3, 4, 16):
            for m in (1.0, 8 * KiB, 31 * KiB, 1024 * KiB, 2 ** 30):
                assert table.decide(n, 2, m, t) == _brute_force(
                    table, n, 2, m, t)


def test_candidates_are_scoped_to_the_collective():
    table = _table()
    assert len(table._candidates("bcast")) == 8
    assert len(table.entries) == 24
    # an unknown collective gets the default config, not a cross-coll hit
    from repro.core.han import HanModule

    assert table.decide(2, 2, 64 * KiB, "gather") == \
        HanModule.default_config(64 * KiB)


def test_index_rebuilds_after_direct_entries_mutation():
    table = _table()
    # legacy callers write entries directly; the index must notice
    table.entries[("gather", 2, 2, float(64 * KiB))] = HanConfig(fs=1 * KiB)
    assert table.decide(2, 2, 64 * KiB, "gather").fs == 1 * KiB
    # and stays consistent for further indexed puts
    table.put("gather", 4, 2, float(16 * KiB), HanConfig(fs=2 * KiB))
    assert table.decide(4, 2, 16 * KiB, "gather").fs == 2 * KiB


def test_put_same_key_twice_keeps_one_entry():
    table = LookupTable()
    table.put("bcast", 2, 2, 64 * KiB, HanConfig(fs=64 * KiB))
    table.put("bcast", 2, 2, 64 * KiB, HanConfig(fs=128 * KiB))
    assert len(table) == 1
    assert table.get("bcast", 2, 2, 64 * KiB).fs == 128 * KiB
    assert len(table._candidates("bcast")) == 1


def test_save_stamps_headers_and_round_trips(tmp_path):
    table = _table()
    path = tmp_path / "table.json"
    table.save(path)
    doc = json.loads(path.read_text())
    assert doc["version"] == 1
    assert doc["schema_version"] == 1
    assert doc["config_digest"]
    assert doc["table_digest"]
    loaded = LookupTable.load(path)
    assert loaded.entries == table.entries
    # decisions survive the round trip bit-identically
    for t in ("bcast", "allreduce"):
        for m in (1.0, 31 * KiB, 2 ** 30):
            assert loaded.decide(3, 2, m, t) == table.decide(3, 2, m, t)


def test_load_rejects_rows_that_contradict_the_stamp(tmp_path):
    table = _table()
    path = tmp_path / "table.json"
    table.save(path)
    doc = json.loads(path.read_text())
    doc["rows"][0]["config"]["fs"] = 1.0  # hand edit after stamping
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="table_digest"):
        LookupTable.load(path)


def test_load_tolerates_legacy_files_without_stamp(tmp_path):
    table = _table()
    path = tmp_path / "table.json"
    table.save(path)
    doc = json.loads(path.read_text())
    del doc["table_digest"]
    del doc["schema_version"]  # oldest files carry only "version"
    path.write_text(json.dumps(doc))
    assert LookupTable.load(path).entries == table.entries


def test_config_to_dict_is_public_and_seedless():
    cfg = HanConfig(fs=64 * KiB, imod="adapt", ibalg="chain", seed=7)
    d = config_to_dict(cfg)
    assert "seed" not in d
    assert HanConfig(**d) == cfg  # seed excluded from equality
