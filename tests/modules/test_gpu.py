"""Tests for the GPU intra-node submodule (paper future work)."""

import numpy as np
import pytest

from repro.core import HanConfig, HanModule
from repro.hardware import gpu_cluster, tiny_cluster
from repro.modules import GpuModule
from repro.mpi import MPIRuntime, SUM
from tests.colls.helpers import rank_array

KiB, MiB = 1024, 1024 * 1024


def run_intra(prog, ppn=4):
    machine = gpu_cluster(num_nodes=1, ppn=ppn)
    runtime = MPIRuntime(machine)
    return runtime.run(prog), runtime.engine.now


class TestGpuModule:
    def test_bcast_correct(self):
        mod = GpuModule()
        data = np.arange(256, dtype=np.float64)

        def prog(comm):
            payload = data if comm.rank == 0 else None
            out = yield from mod.bcast(comm, nbytes=data.nbytes,
                                       payload=payload)
            return out

        results, t = run_intra(prog)
        for out in results:
            np.testing.assert_array_equal(out, data)
        assert t > 0

    def test_reduce_correct(self):
        mod = GpuModule()
        n = 64

        def prog(comm):
            out = yield from mod.reduce(
                comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=SUM
            )
            return out

        results, _ = run_intra(prog)
        want = np.sum([rank_array(r, n) for r in range(4)], axis=0)
        np.testing.assert_allclose(results[0], want)
        assert all(r is None for r in results[1:])

    def test_allreduce_correct(self):
        mod = GpuModule()
        n = 48

        def prog(comm):
            out = yield from mod.allreduce(
                comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=SUM
            )
            return out

        results, _ = run_intra(prog)
        want = np.sum([rank_array(r, n) for r in range(4)], axis=0)
        for out in results:
            np.testing.assert_allclose(out, want)

    def test_barrier(self):
        mod = GpuModule()
        exits = {}

        def prog(comm):
            yield from comm.compute(0.1 * comm.rank)
            yield from mod.barrier(comm)
            exits[comm.rank] = comm.now

        run_intra(prog)
        assert min(exits.values()) >= 0.3

    def test_rejects_cpu_only_nodes(self):
        mod = GpuModule()
        runtime = MPIRuntime(tiny_cluster(num_nodes=1, ppn=2))

        def prog(comm):
            with pytest.raises(ValueError, match="GPU"):
                yield from mod.bcast(comm, nbytes=64)
            return True

        assert all(runtime.run(prog))

    def test_gpu_beats_host_modules_for_large_intra_bcast(self):
        """NVLink fan-out outruns the host memory-bus paths."""
        from repro.modules import SMModule, SoloModule

        times = {}
        for name, mod in (("gpu", GpuModule()), ("sm", SMModule()),
                          ("solo", SoloModule())):

            def prog(comm, m=mod):
                yield from m.bcast(comm, nbytes=64 * MiB)

            _, times[name] = run_intra(prog)
        assert times["gpu"] < times["solo"]
        assert times["gpu"] < times["sm"]

    def test_launch_latency_hurts_small_messages(self):
        from repro.modules import SMModule

        times = {}
        for name, mod in (("gpu", GpuModule()), ("sm", SMModule())):

            def prog(comm, m=mod):
                for _ in range(4):
                    yield from m.bcast(comm, nbytes=256)

            _, times[name] = run_intra(prog)
        assert times["sm"] < times["gpu"]


class TestGpuFallbackOps:
    """Each formerly-missing collective now has a device-path fallback."""

    N = 64  # elements per rank block

    def _blocks(self, nranks=4, n=None):
        n = n or self.N
        return [rank_array(r, n) for r in range(nranks)]

    def test_gather_correct(self):
        mod = GpuModule()
        blocks = self._blocks()

        def prog(comm):
            out = yield from mod.gather(
                comm, nbytes=blocks[0].nbytes, payload=blocks[comm.rank]
            )
            return out

        results, t = run_intra(prog)
        np.testing.assert_array_equal(results[0], np.concatenate(blocks))
        assert all(r is None for r in results[1:])
        assert t > 0

    def test_scatter_correct(self):
        mod = GpuModule()
        blocks = self._blocks()
        full = np.concatenate(blocks)

        def prog(comm):
            out = yield from mod.scatter(
                comm, nbytes=full.nbytes,
                payload=full if comm.rank == 0 else None,
            )
            return out

        results, t = run_intra(prog)
        for rank, out in enumerate(results):
            np.testing.assert_array_equal(out, blocks[rank])
        assert t > 0

    def test_allgather_correct(self):
        mod = GpuModule()
        blocks = self._blocks()

        def prog(comm):
            out = yield from mod.allgather(
                comm, nbytes=blocks[0].nbytes, payload=blocks[comm.rank]
            )
            return out

        results, t = run_intra(prog)
        want = np.concatenate(blocks)
        for out in results:
            np.testing.assert_array_equal(out, want)
        assert t > 0

    def test_reduce_scatter_correct(self):
        mod = GpuModule()
        blocks = self._blocks()
        want = np.sum(blocks, axis=0)
        per = self.N // 4

        def prog(comm):
            out = yield from mod.reduce_scatter(
                comm, nbytes=blocks[0].nbytes, payload=blocks[comm.rank],
                op=SUM,
            )
            return out

        results, t = run_intra(prog)
        for rank, out in enumerate(results):
            np.testing.assert_array_equal(
                out, want[rank * per:(rank + 1) * per]
            )
        assert t > 0

    def test_alltoall_correct(self):
        mod = GpuModule()
        blocks = self._blocks()
        per = self.N // 4

        def prog(comm):
            out = yield from mod.alltoall(
                comm, nbytes=blocks[0].nbytes / 4, payload=blocks[comm.rank]
            )
            return out

        results, t = run_intra(prog)
        for rank, out in enumerate(results):
            want = np.concatenate(
                [blocks[s].reshape(4, per)[rank] for s in range(4)]
            )
            np.testing.assert_array_equal(out, want)
        assert t > 0

    def test_fallbacks_charge_nvlink_time(self):
        """The fallbacks are device collectives, not free host hops:
        doubling the payload must increase simulated time."""
        mod = GpuModule()
        times = {}
        for n in (self.N, self.N * 16):
            blocks = self._blocks(n=n)

            def prog(comm, blocks=blocks):
                yield from mod.allgather(
                    comm, nbytes=blocks[0].nbytes, payload=blocks[comm.rank]
                )

            _, times[n] = run_intra(prog)
        assert times[self.N * 16] > times[self.N]


class TestHanWithGpuSubmodule:
    def test_han_accepts_gpu_smod(self):
        cfg = HanConfig(fs=1 * MiB, imod="adapt", smod="gpu",
                        ibalg="chain", ibs=512 * KiB)
        assert cfg.smod == "gpu"

    def test_hierarchical_bcast_with_gpu_intra(self):
        machine = gpu_cluster(num_nodes=4, ppn=4)
        han = HanModule(config=HanConfig(
            fs=1 * MiB, imod="adapt", smod="gpu", ibalg="chain",
            ibs=512 * KiB,
        ))
        data = np.arange(1 * MiB // 8, dtype=np.float64)
        runtime = MPIRuntime(machine)

        def prog(comm):
            payload = data if comm.rank == 0 else None
            out = yield from han.bcast(comm, nbytes=data.nbytes,
                                       payload=payload)
            return np.array_equal(out, data)

        assert all(runtime.run(prog))

    def test_gpu_han_beats_host_han_large_bcast(self):
        """The future-work payoff: HAN + GPU submodule on GPU machines."""
        machine = gpu_cluster(num_nodes=4, ppn=4)
        nbytes = 64 * MiB
        times = {}
        for smod in ("gpu", "solo"):
            han = HanModule(config=HanConfig(
                fs=4 * MiB, imod="adapt", smod=smod, ibalg="chain",
                ibs=1 * MiB,
            ))
            runtime = MPIRuntime(machine)

            def prog(comm, h=han):
                yield from h.bcast(comm, nbytes=nbytes)

            runtime.run(prog)
            times[smod] = runtime.engine.now
        assert times["gpu"] < times["solo"]

    def test_hierarchical_allreduce_with_gpu_intra(self):
        machine = gpu_cluster(num_nodes=2, ppn=4)
        han = HanModule(config=HanConfig(
            fs=None, imod="adapt", smod="gpu", ibalg="binomial",
            iralg="binomial",
        ))
        n = 512
        runtime = MPIRuntime(machine)

        def prog(comm):
            out = yield from han.allreduce(
                comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=SUM
            )
            return out

        results = runtime.run(prog)
        want = np.sum([rank_array(r, n) for r in range(8)], axis=0)
        for out in results:
            np.testing.assert_allclose(out, want)
