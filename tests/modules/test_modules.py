"""Behavioural tests for the five collective modules."""

import numpy as np
import pytest

from repro.hardware import tiny_cluster
from repro.modules import (
    AdaptModule,
    LibnbcModule,
    SMModule,
    SoloModule,
    TunedModule,
    make_module,
)
from repro.mpi import MPIRuntime, SUM
from tests.colls.helpers import rank_array


def run(machine, prog, ranks=None):
    runtime = MPIRuntime(machine)
    results = runtime.run(prog, ranks=ranks)
    return results, runtime.engine.now


def intra_machine(ppn=4):
    return tiny_cluster(num_nodes=1, ppn=ppn)


def inter_machine(nodes=4):
    return tiny_cluster(num_nodes=nodes, ppn=1)


def test_make_module_registry():
    for name in ("tuned", "libnbc", "adapt", "sm", "solo"):
        assert make_module(name).name == name
    with pytest.raises(ValueError):
        make_module("nope")


# ---------------------------------------------------------------- tuned

class TestTuned:
    @pytest.mark.parametrize("nbytes", [64, 64 * 1024, 4 * 1024 * 1024])
    def test_bcast_correct_all_decision_branches(self, nbytes):
        mod = TunedModule()
        n = nbytes // 8
        data = np.arange(n, dtype=np.float64)

        def prog(comm):
            payload = data if comm.rank == 0 else None
            out = yield from mod.bcast(comm, nbytes=nbytes, payload=payload)
            return out

        results, _ = run(tiny_cluster(num_nodes=3, ppn=2), prog)
        for out in results:
            np.testing.assert_array_equal(out, data)

    @pytest.mark.parametrize("nbytes", [64, 1024 * 1024])
    def test_allreduce_correct(self, nbytes):
        mod = TunedModule()
        n = nbytes // 8

        def prog(comm):
            out = yield from mod.allreduce(
                comm, nbytes=nbytes, payload=rank_array(comm.rank, n), op=SUM
            )
            return out

        results, _ = run(tiny_cluster(num_nodes=2, ppn=2), prog)
        want = np.sum([rank_array(r, n) for r in range(4)], axis=0)
        for out in results:
            np.testing.assert_allclose(out, want)

    def test_decision_rules_shape(self):
        assert TunedModule.decide_bcast(64, 100)[0] == "binomial"
        assert TunedModule.decide_bcast(64, 100 * 1024)[0] == "binary"
        alg, seg = TunedModule.decide_bcast(64, 8 * 1024 * 1024)
        assert alg == "chain" and seg == 128 * 1024
        assert TunedModule.decide_allreduce(64, 512)[0] == "recursive_doubling"
        assert TunedModule.decide_allreduce(64, 8 * 1024 * 1024)[0] == "ring"

    def test_explicit_algorithm_override(self):
        mod = TunedModule()

        def prog(comm):
            out = yield from mod.bcast(
                comm, nbytes=1024, payload=None, algorithm="chain", segsize=256
            )
            return out

        run(inter_machine(3), prog)

    def test_no_nonblocking(self):
        mod = TunedModule()
        from repro.modules import NotSupportedError

        def prog(comm):
            with pytest.raises(NotSupportedError):
                mod.ibcast(comm, nbytes=8)
            yield from comm.barrier()

        run(inter_machine(2), prog)


# ---------------------------------------------------------------- libnbc / adapt

class TestNonblocking:
    @pytest.mark.parametrize("mod_cls", [LibnbcModule, AdaptModule])
    def test_ibcast_delivers_and_returns_request(self, mod_cls):
        mod = mod_cls()
        data = np.arange(100, dtype=np.float64)

        def prog(comm):
            payload = data if comm.rank == 0 else None
            req = mod.ibcast(comm, nbytes=data.nbytes, payload=payload)
            out = yield from comm.wait(req)
            return out

        results, _ = run(inter_machine(4), prog)
        for out in results:
            np.testing.assert_array_equal(out, data)

    @pytest.mark.parametrize("mod_cls", [LibnbcModule, AdaptModule])
    def test_ireduce_correct(self, mod_cls):
        mod = mod_cls()
        n = 50

        def prog(comm):
            req = mod.ireduce(
                comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=SUM
            )
            out = yield from comm.wait(req)
            return out

        results, _ = run(inter_machine(4), prog)
        want = np.sum([rank_array(r, n) for r in range(4)], axis=0)
        np.testing.assert_allclose(results[0], want)
        assert all(r is None for r in results[1:])

    def test_adapt_algorithm_selection(self):
        for alg in ("chain", "binary", "binomial"):
            mod = AdaptModule()
            data = np.arange(64, dtype=np.float64)

            def prog(comm, a=alg):
                payload = data if comm.rank == 0 else None
                out = yield from mod.bcast(
                    comm, nbytes=data.nbytes, payload=payload, algorithm=a,
                    segsize=128,
                )
                return out

            results, _ = run(inter_machine(5), prog)
            for out in results:
                np.testing.assert_array_equal(out, data)

    def test_libnbc_rejects_algorithm_choice(self):
        mod = LibnbcModule()

        def prog(comm):
            with pytest.raises(ValueError):
                mod.ibcast(comm, nbytes=8, algorithm="chain")
            yield from comm.barrier()

        run(inter_machine(2), prog)

    def test_adapt_rejects_unknown_algorithm(self):
        mod = AdaptModule()

        def prog(comm):
            with pytest.raises(ValueError):
                mod.ibcast(comm, nbytes=8, algorithm="warp")
            yield from comm.barrier()

        run(inter_machine(2), prog)

    def test_adapt_overlaps_with_sliced_compute(self):
        """A non-blocking bcast progresses during (sliced) caller compute.

        Single-threaded MPI only progresses inside library calls, so the
        application compute is sliced -- which is exactly how HAN's
        task-based pipeline interleaves work (paper III-A).
        """
        mod = AdaptModule()
        nbytes = 8 * 1024 * 1024
        slices, total = 200, 5e-3

        def overlapped(comm):
            req = mod.ibcast(comm, nbytes=nbytes)
            for _ in range(slices):
                yield from comm.compute(total / slices)
            yield from comm.wait(req)

        _, t_overlap = run(inter_machine(3), overlapped)

        def serial(comm):
            for _ in range(slices):
                yield from comm.compute(total / slices)
            req = mod.ibcast(comm, nbytes=nbytes)
            yield from comm.wait(req)

        _, t_serial = run(inter_machine(3), serial)
        assert t_overlap < t_serial * 0.85

    def test_libnbc_slower_than_adapt_large_pipelined(self):
        """Libnbc is stuck with an unsegmented binomial tree; ADAPT's
        pipelined chain wins for big messages (why Table II exposes
        `ibalg`/`ibs` for ADAPT only)."""
        times = {}

        def prog_libnbc(comm):
            req = LibnbcModule().ibcast(comm, nbytes=16 * 1024 * 1024)
            yield from comm.wait(req)

        def prog_adapt(comm):
            req = AdaptModule().ibcast(
                comm,
                nbytes=16 * 1024 * 1024,
                algorithm="chain",
                segsize=1024 * 1024,
            )
            yield from comm.wait(req)

        _, times["libnbc"] = run(inter_machine(6), prog_libnbc)
        _, times["adapt"] = run(inter_machine(6), prog_adapt)
        assert times["adapt"] < times["libnbc"] * 0.75


# ---------------------------------------------------------------- sm / solo

class TestSharedMemory:
    @pytest.mark.parametrize("mod_cls", [SMModule, SoloModule])
    def test_bcast_correct(self, mod_cls):
        mod = mod_cls()
        data = np.arange(128, dtype=np.float64)

        def prog(comm):
            payload = data if comm.rank == 0 else None
            out = yield from mod.bcast(comm, nbytes=data.nbytes, payload=payload)
            return out

        results, _ = run(intra_machine(4), prog)
        for out in results:
            np.testing.assert_array_equal(out, data)

    @pytest.mark.parametrize("mod_cls", [SMModule, SoloModule])
    def test_reduce_correct(self, mod_cls):
        mod = mod_cls()
        n = 40

        def prog(comm):
            out = yield from mod.reduce(
                comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=SUM
            )
            return out

        results, _ = run(intra_machine(4), prog)
        want = np.sum([rank_array(r, n) for r in range(4)], axis=0)
        np.testing.assert_allclose(results[0], want)
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("mod_cls", [SMModule, SoloModule])
    def test_allreduce_correct(self, mod_cls):
        mod = mod_cls()
        n = 24

        def prog(comm):
            out = yield from mod.allreduce(
                comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=SUM
            )
            return out

        results, _ = run(intra_machine(4), prog)
        want = np.sum([rank_array(r, n) for r in range(4)], axis=0)
        for out in results:
            np.testing.assert_allclose(out, want)

    @pytest.mark.parametrize("mod_cls", [SMModule, SoloModule])
    def test_gather_correct(self, mod_cls):
        mod = mod_cls()
        n = 8

        def prog(comm):
            out = yield from mod.gather(
                comm, nbytes=n * 8, payload=rank_array(comm.rank, n)
            )
            return out

        results, _ = run(intra_machine(4), prog)
        want = np.concatenate([rank_array(r, n) for r in range(4)])
        np.testing.assert_array_equal(results[0], want)

    @pytest.mark.parametrize("mod_cls", [SMModule, SoloModule])
    def test_barrier_holds_fast_ranks(self, mod_cls):
        mod = mod_cls()
        exits = {}

        def prog(comm):
            yield from comm.compute(0.1 * comm.rank)
            yield from mod.barrier(comm)
            exits[comm.rank] = comm.now

        run(intra_machine(4), prog)
        assert min(exits.values()) >= 0.3

    @pytest.mark.parametrize("mod_cls", [SMModule, SoloModule])
    def test_rejects_multi_node_communicator(self, mod_cls):
        mod = mod_cls()

        def prog(comm):
            with pytest.raises(ValueError, match="intra-node"):
                yield from mod.bcast(comm, nbytes=8)
            return True

        results, _ = run(tiny_cluster(num_nodes=2, ppn=1), prog)
        assert all(results)

    def test_sm_beats_solo_small_messages(self):
        """The paper's SM/SOLO crossover (section III, III-C heuristic)."""
        times = {}
        for name, mod in (("sm", SMModule()), ("solo", SoloModule())):

            def prog(comm, m=mod):
                for _ in range(4):
                    out = yield from m.bcast(comm, nbytes=256)
                return out

            _, times[name] = run(intra_machine(8), prog)
        assert times["sm"] < times["solo"]

    def test_solo_beats_sm_large_messages(self):
        times = {}
        for name, mod in (("sm", SMModule()), ("solo", SoloModule())):

            def prog(comm, m=mod):
                out = yield from m.bcast(comm, nbytes=4 * 1024 * 1024)
                return out

            _, times[name] = run(intra_machine(8), prog)
        assert times["solo"] < times["sm"]

    def test_solo_reduce_beats_sm_large(self):
        times = {}
        for name, mod in (("sm", SMModule()), ("solo", SoloModule())):

            def prog(comm, m=mod):
                yield from m.reduce(comm, nbytes=4 * 1024 * 1024)

            _, times[name] = run(intra_machine(8), prog)
        assert times["solo"] < times["sm"]

    def test_coll_state_cleaned_up(self):
        mod = SMModule()
        machine = intra_machine(4)
        runtime = MPIRuntime(machine)

        def prog(comm):
            yield from mod.bcast(comm, nbytes=64)
            yield from mod.barrier(comm)

        runtime.run(prog)
        assert runtime._coll_state == {}
