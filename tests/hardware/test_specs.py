"""Tests for hardware specs and machine presets."""

import pytest

from repro.hardware import (
    MachineSpec,
    NicSpec,
    NodeSpec,
    shaheen2,
    small_cluster,
    stampede2,
    tiny_cluster,
)


def test_shaheen2_paper_geometry():
    m = shaheen2()
    assert m.num_ranks == 4096  # 128 nodes x 32 ppn (paper IV-A)
    assert m.topology == "dragonfly"
    topo = m.build_topology()
    assert topo.num_nodes == 128


def test_stampede2_paper_geometry():
    m = stampede2()
    assert m.num_ranks == 1536  # 32 nodes x 48 ppn (paper IV-A)
    assert m.topology == "fattree"
    assert m.node.cores == 48


def test_scaled_keeps_hardware():
    m = shaheen2().scaled(num_nodes=8, ppn=4)
    assert m.num_ranks == 32
    assert m.nic == shaheen2().nic
    assert m.node == shaheen2().node


def test_avx_faster_than_scalar_reduction_everywhere():
    for m in (shaheen2(), stampede2(), small_cluster(), tiny_cluster()):
        assert m.node.reduce_bw_avx > m.node.reduce_bw


def test_membus_faster_than_nic_everywhere():
    # Intra-node transfers must outrun inter-node for the paper's
    # hierarchy argument to hold.
    for m in (shaheen2(), stampede2(), small_cluster(), tiny_cluster()):
        assert m.node.mem_bw > m.nic.bw


def test_ppn_bounded_by_cores():
    with pytest.raises(ValueError):
        shaheen2(ppn=33)


def test_invalid_node_spec():
    with pytest.raises(ValueError):
        NodeSpec(cores=0, mem_bw=1, copy_bw=1, reduce_bw=1, reduce_bw_avx=1)
    with pytest.raises(ValueError):
        NodeSpec(cores=1, mem_bw=-1, copy_bw=1, reduce_bw=1, reduce_bw_avx=1)


def test_invalid_nic_spec():
    with pytest.raises(ValueError):
        NicSpec(bw=0, latency=1e-6)
    with pytest.raises(ValueError):
        NicSpec(bw=1e9, latency=-1)


def test_machine_topology_build_all_presets():
    for m in (shaheen2(), stampede2(), small_cluster(), tiny_cluster()):
        topo = m.build_topology()
        assert topo.num_nodes == m.num_nodes
        # spot check a route
        if m.num_nodes > 1:
            assert topo.validate_route(0, m.num_nodes - 1)


def test_link_bw_defaults_to_nic_bw():
    m = MachineSpec(
        name="x",
        num_nodes=4,
        ppn=2,
        node=tiny_cluster().node,
        nic=NicSpec(bw=5e9, latency=1e-6),
        topology="torus",
    )
    topo = m.build_topology()
    assert topo.link_bw == 5e9
