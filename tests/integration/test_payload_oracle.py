"""Every collective x every module x every fabric, element-exact vs numpy.

Payloads are integer-valued float64 arrays (seeded per rank), so SUM
reductions are exact in IEEE double regardless of the reduction order an
algorithm picks — the comparison is ``assert_array_equal``, not a
tolerance check.

The matrix axes:

- **module**: han, han3 (3-level), gpu (device transport), tuned,
  libnbc, sm, solo;
- **fabric**: ``flat`` single-domain nodes vs ``pod`` split-NVLink
  nodes (the ``gpu_pod`` preset, ``fabric_domains=2``) — on pod the HAN
  modules run with ``smod="gpu"``, engaging the fabric/node/network
  composite;
- **seed**: three independent payload realizations.

Support is an *explicit registry*: a (module, collective, fabric) pair
absent from ``SUPPORTED`` must raise :class:`NotSupportedError`, and a
pair that starts succeeding without being registered fails the test
loudly — implementing a new collective forces updating the matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import HanConfig
from repro.modules import NotSupportedError
from tests.colls.helpers import (
    FABRICS,
    make_test_module,
    run_module_collective,
)

SIZE = 8
NELEMS = 96  # divisible by SIZE -> clean scatter/gather blocks
BLOCK = NELEMS // SIZE

MODULES = ("han", "han3", "gpu", "tuned", "libnbc", "sm", "solo")
SEEDS = (1, 2, 3)
COLLS = (
    "bcast", "reduce", "allreduce", "gather", "scatter", "allgather",
    "reduce_scatter", "alltoall", "barrier",
)

_ALL9 = dict.fromkeys(COLLS, FABRICS)

#: (module -> collective -> fabrics) with verified payload oracles.
#: Adding a collective to a module REQUIRES registering it here — the
#: matrix asserts NotSupportedError for every unregistered pair.
SUPPORTED = {
    "han": dict(_ALL9),
    "han3": dict(_ALL9),
    "gpu": dict(_ALL9),
    "tuned": dict(_ALL9),
    "libnbc": {"bcast": FABRICS, "reduce": FABRICS, "barrier": FABRICS},
    "sm": dict(_ALL9),
    "solo": dict(_ALL9),
}

_UNSUPPORTED = "NOT_SUPPORTED"


def payload_for(seed: int, rank: int, n: int = NELEMS) -> np.ndarray:
    """Integer-valued float64 data: SUM is order-independent and exact."""
    rng = np.random.default_rng([seed, rank])
    return rng.integers(-50, 50, n).astype(np.float64)


def matrix_module(module_name: str, fabric: str):
    """The module under test, fabric-configured for the HAN family."""
    config = None
    if module_name in ("han", "han3") and fabric == "pod":
        # ride the device transport intra-node so the split-NVLink
        # fabric composite (fabric/node/network 3-level) is exercised
        config = HanConfig(fs=None, imod="libnbc", smod="gpu")
    return make_test_module(module_name, config=config)


def _guard(gen_fn):
    """Program wrapper translating NotSupportedError into a sentinel."""

    def prog(comm):
        try:
            out = yield from gen_fn(comm)
        except NotSupportedError:
            return _UNSUPPORTED
        return out

    return prog


def _run_matrix(module_name, fabric, coll, gen_fn):
    results, _ = run_module_collective(
        module_name, SIZE, _guard(gen_fn), fabric=fabric
    )
    supported = fabric in SUPPORTED[module_name].get(coll, ())
    hit = [r is _UNSUPPORTED for r in results]
    if not supported:
        assert all(hit), (
            f"{module_name}.{coll} on {fabric} ran without "
            "NotSupportedError but is not in SUPPORTED — register the "
            "new (module, collective, fabric) pair and add its oracle"
        )
        return None
    assert not any(hit), (
        f"{module_name}.{coll} on {fabric} raised NotSupportedError "
        "but is registered as supported"
    )
    return results


def _check(module_name, fabric, coll, seed):
    """Build payloads, run the collective, compare against numpy."""
    mod = matrix_module(module_name, fabric)
    blocks = [payload_for(seed, r) for r in range(SIZE)]
    small = [payload_for(seed, r, BLOCK) for r in range(SIZE)]

    if coll == "bcast":
        data = blocks[0]
        results = _run_matrix(module_name, fabric, coll, lambda comm: mod.bcast(
            comm, nbytes=data.nbytes,
            payload=data if comm.rank == 0 else None,
        ))
        if results is None:
            return
        for rank, out in enumerate(results):
            np.testing.assert_array_equal(out, data, err_msg=f"rank {rank}")

    elif coll == "reduce":
        want = np.sum(blocks, axis=0)
        results = _run_matrix(module_name, fabric, coll, lambda comm: mod.reduce(
            comm, nbytes=blocks[0].nbytes, payload=blocks[comm.rank],
        ))
        if results is None:
            return
        np.testing.assert_array_equal(results[0], want)

    elif coll == "allreduce":
        want = np.sum(blocks, axis=0)
        results = _run_matrix(module_name, fabric, coll, lambda comm: mod.allreduce(
            comm, nbytes=blocks[0].nbytes, payload=blocks[comm.rank],
        ))
        if results is None:
            return
        for rank, out in enumerate(results):
            np.testing.assert_array_equal(out, want, err_msg=f"rank {rank}")

    elif coll == "gather":
        want = np.concatenate(small)
        results = _run_matrix(module_name, fabric, coll, lambda comm: mod.gather(
            comm, nbytes=small[0].nbytes, payload=small[comm.rank],
        ))
        if results is None:
            return
        np.testing.assert_array_equal(results[0], want)

    elif coll == "scatter":
        full = np.concatenate(small)
        results = _run_matrix(module_name, fabric, coll, lambda comm: mod.scatter(
            comm, nbytes=full.nbytes,
            payload=full if comm.rank == 0 else None,
        ))
        if results is None:
            return
        for rank, out in enumerate(results):
            np.testing.assert_array_equal(out, small[rank],
                                          err_msg=f"rank {rank}")

    elif coll == "allgather":
        want = np.concatenate(small)
        results = _run_matrix(module_name, fabric, coll, lambda comm: mod.allgather(
            comm, nbytes=small[0].nbytes, payload=small[comm.rank],
        ))
        if results is None:
            return
        for rank, out in enumerate(results):
            np.testing.assert_array_equal(out, want, err_msg=f"rank {rank}")

    elif coll == "reduce_scatter":
        want = np.sum(blocks, axis=0)
        results = _run_matrix(
            module_name, fabric, coll, lambda comm: mod.reduce_scatter(
                comm, nbytes=blocks[0].nbytes, payload=blocks[comm.rank],
            )
        )
        if results is None:
            return
        for rank, out in enumerate(results):
            np.testing.assert_array_equal(
                out, want[rank * BLOCK:(rank + 1) * BLOCK],
                err_msg=f"rank {rank}",
            )

    elif coll == "alltoall":
        results = _run_matrix(module_name, fabric, coll, lambda comm: mod.alltoall(
            comm, nbytes=blocks[0].nbytes / SIZE, payload=blocks[comm.rank],
        ))
        if results is None:
            return
        for rank, out in enumerate(results):
            want = np.concatenate(
                [blocks[s].reshape(SIZE, BLOCK)[rank] for s in range(SIZE)]
            )
            np.testing.assert_array_equal(out, want, err_msg=f"rank {rank}")

    else:
        raise AssertionError(f"no oracle for collective {coll!r}")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("fabric", FABRICS)
@pytest.mark.parametrize("module_name", MODULES)
@pytest.mark.parametrize("coll", [c for c in COLLS if c != "barrier"])
def test_payload_matrix(coll, module_name, fabric, seed):
    _check(module_name, fabric, coll, seed)


@pytest.mark.parametrize("fabric", FABRICS)
@pytest.mark.parametrize("module_name", MODULES)
def test_barrier_no_early_exit(module_name, fabric):
    """No payload to compare; the oracle is the synchronization itself."""
    mod = matrix_module(module_name, fabric)
    entries, exits = {}, {}

    def body(comm):
        yield from comm.compute(0.05 * comm.rank)
        entries[comm.rank] = comm.now
        yield from mod.barrier(comm)
        exits[comm.rank] = comm.now

    if _run_matrix(module_name, fabric, "barrier", body) is None:
        return
    assert min(exits.values()) >= max(entries.values())


def test_supported_registry_is_exhaustive():
    """Every matrix module has a registry row; rows only name known colls."""
    assert set(SUPPORTED) == set(MODULES)
    for module_name, row in SUPPORTED.items():
        unknown = set(row) - set(COLLS)
        assert not unknown, f"{module_name}: unknown collectives {unknown}"
        for coll, fabrics in row.items():
            assert set(fabrics) <= set(FABRICS), (module_name, coll)
