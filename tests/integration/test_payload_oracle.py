"""Every collective x every module, element-exact against a numpy oracle.

Payloads are integer-valued float64 arrays (seeded per rank), so SUM
reductions are exact in IEEE double regardless of the reduction order an
algorithm picks — the comparison is ``assert_array_equal``, not a
tolerance check.  Modules that do not implement a collective are
skipped via :class:`NotSupportedError`; the shared-memory modules (sm,
solo) run all ranks inside one node, everything else runs multi-node.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.modules import NotSupportedError
from tests.colls.helpers import make_test_module, run_module_collective

SIZE = 8
NELEMS = 96  # divisible by SIZE -> clean scatter/gather blocks
BLOCK = NELEMS // SIZE

MODULES = ("han", "tuned", "libnbc", "sm", "solo")
SEEDS = (1, 2, 3)

_UNSUPPORTED = "NOT_SUPPORTED"


def payload_for(seed: int, rank: int, n: int = NELEMS) -> np.ndarray:
    """Integer-valued float64 data: SUM is order-independent and exact."""
    rng = np.random.default_rng([seed, rank])
    return rng.integers(-50, 50, n).astype(np.float64)


def _run(module_name, prog):
    results, _ = run_module_collective(module_name, SIZE, prog)
    if any(r is _UNSUPPORTED for r in results):
        pytest.skip(f"{module_name} does not support this collective")
    return results


def _guard(gen_fn):
    """Program wrapper translating NotSupportedError into a sentinel."""

    def prog(comm):
        try:
            out = yield from gen_fn(comm)
        except NotSupportedError:
            return _UNSUPPORTED
        return out

    return prog


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("module_name", MODULES)
def test_bcast_oracle(module_name, seed):
    mod = make_test_module(module_name)
    data = payload_for(seed, 0)

    results = _run(module_name, _guard(lambda comm: mod.bcast(
        comm, nbytes=data.nbytes,
        payload=data if comm.rank == 0 else None,
    )))
    for rank, out in enumerate(results):
        np.testing.assert_array_equal(out, data, err_msg=f"rank {rank}")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("module_name", MODULES)
def test_reduce_oracle(module_name, seed):
    mod = make_test_module(module_name)
    blocks = [payload_for(seed, r) for r in range(SIZE)]
    want = np.sum(blocks, axis=0)

    results = _run(module_name, _guard(lambda comm: mod.reduce(
        comm, nbytes=blocks[0].nbytes, payload=blocks[comm.rank],
    )))
    np.testing.assert_array_equal(results[0], want)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("module_name", MODULES)
def test_allreduce_oracle(module_name, seed):
    mod = make_test_module(module_name)
    blocks = [payload_for(seed, r) for r in range(SIZE)]
    want = np.sum(blocks, axis=0)

    results = _run(module_name, _guard(lambda comm: mod.allreduce(
        comm, nbytes=blocks[0].nbytes, payload=blocks[comm.rank],
    )))
    for rank, out in enumerate(results):
        np.testing.assert_array_equal(out, want, err_msg=f"rank {rank}")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("module_name", MODULES)
def test_gather_oracle(module_name, seed):
    mod = make_test_module(module_name)
    blocks = [payload_for(seed, r, BLOCK) for r in range(SIZE)]
    want = np.concatenate(blocks)

    results = _run(module_name, _guard(lambda comm: mod.gather(
        comm, nbytes=blocks[0].nbytes, payload=blocks[comm.rank],
    )))
    np.testing.assert_array_equal(results[0], want)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("module_name", MODULES)
def test_scatter_oracle(module_name, seed):
    mod = make_test_module(module_name)
    blocks = [payload_for(seed, r, BLOCK) for r in range(SIZE)]
    full = np.concatenate(blocks)

    results = _run(module_name, _guard(lambda comm: mod.scatter(
        comm, nbytes=full.nbytes,
        payload=full if comm.rank == 0 else None,
    )))
    for rank, out in enumerate(results):
        np.testing.assert_array_equal(out, blocks[rank],
                                      err_msg=f"rank {rank}")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("module_name", MODULES)
def test_allgather_oracle(module_name, seed):
    mod = make_test_module(module_name)
    blocks = [payload_for(seed, r, BLOCK) for r in range(SIZE)]
    want = np.concatenate(blocks)

    results = _run(module_name, _guard(lambda comm: mod.allgather(
        comm, nbytes=blocks[0].nbytes, payload=blocks[comm.rank],
    )))
    for rank, out in enumerate(results):
        np.testing.assert_array_equal(out, want, err_msg=f"rank {rank}")


@pytest.mark.parametrize("module_name", MODULES)
def test_barrier_no_early_exit(module_name):
    """No payload to compare; the oracle is the synchronization itself."""
    mod = make_test_module(module_name)
    entries, exits = {}, {}

    def body(comm):
        yield from comm.compute(0.05 * comm.rank)
        entries[comm.rank] = comm.now
        yield from mod.barrier(comm)
        exits[comm.rank] = comm.now

    _run(module_name, _guard(body))
    assert min(exits.values()) >= max(entries.values())
