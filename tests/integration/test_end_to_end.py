"""End-to-end integration: tune -> persist -> decide -> run -> win.

These tests exercise the full user-facing pipeline the README promises,
across package boundaries (tuning + core + comparators + bench).
"""

import numpy as np
import pytest

from repro.bench import imb_run
from repro.comparators import OpenMPIDefault, OpenMPIHan
from repro.core import HanConfig, HanModule
from repro.hardware import shaheen2, tiny_cluster
from repro.mpi import MPIRuntime, SUM
from repro.tuning import (
    Autotuner,
    LookupTable,
    SearchSpace,
    compile_rules,
)

KiB, MiB = 1024, 1024 * 1024

MACHINE = shaheen2(num_nodes=4, ppn=4)
SPACE = SearchSpace(
    seg_sizes=(512 * KiB, 1 * MiB),
    messages=(64 * KiB, 1 * MiB, 8 * MiB),
    adapt_algorithms=("chain", "binary"),
    inner_segs=(512 * KiB,),
)


@pytest.fixture(scope="module")
def tuned_table(tmp_path_factory):
    tuner = Autotuner(MACHINE, space=SPACE, warm_iters=6)
    report = tuner.tune(colls=("bcast",), method="task+h")
    path = tmp_path_factory.mktemp("tables") / "table.json"
    report.table.save(path)
    return LookupTable.load(path)


def test_tuned_han_beats_default_large_bcast(tuned_table):
    han = OpenMPIHan(decision_fn=tuned_table.as_decision_fn())
    omp = OpenMPIDefault()
    sizes = [8 * MiB]
    t_han = imb_run(MACHINE, han, "bcast", sizes).times[0]
    t_omp = imb_run(MACHINE, omp, "bcast", sizes).times[0]
    assert t_han < t_omp


def test_decision_rules_equivalent_to_table(tuned_table):
    rules = compile_rules(tuned_table)
    for m in SPACE.messages:
        assert rules.decide(
            MACHINE.num_nodes, MACHINE.ppn, m, "bcast"
        ) == tuned_table.decide(MACHINE.num_nodes, MACHINE.ppn, m, "bcast")
    assert rules.compression >= 1.0


def test_tuned_decisions_used_with_data(tuned_table):
    han = HanModule(decision_fn=tuned_table.as_decision_fn())
    data = np.arange(1 * MiB // 8, dtype=np.float64)
    runtime = MPIRuntime(MACHINE)

    def prog(comm):
        payload = data if comm.rank == 0 else None
        out = yield from han.bcast(comm, nbytes=data.nbytes, payload=payload)
        return np.array_equal(out, data)

    assert all(runtime.run(prog))


def test_fig1_task_schedule_structure():
    """Leaders run ib(0), sbib x (u-1), sb; others run sb x u (Fig 1)."""
    from repro.core.han import han_segments
    from repro.core.subcomms import build_hierarchy
    from repro.modules import make_module

    machine = tiny_cluster(num_nodes=2, ppn=2)
    runtime = MPIRuntime(machine)
    cfg = HanConfig(fs=64 * KiB, imod="adapt", smod="sm", ibalg="binomial")
    nbytes = 256 * KiB
    log: dict[int, list[str]] = {}

    def prog(comm):
        hier = yield from build_hierarchy(comm)
        imod, smod = make_module(cfg.imod), make_module(cfg.smod)
        u, seg_bytes, _ = han_segments(nbytes, cfg.fs, None)
        tasks = log.setdefault(comm.rank, [])
        if hier.local_rank == 0:
            req = imod.ibcast(hier.up, seg_bytes[0], root=0,
                              algorithm=cfg.ibalg)
            yield from hier.up.wait(req)
            tasks.append("ib")
            for i in range(1, u):
                req = imod.ibcast(hier.up, seg_bytes[i], root=0,
                                  algorithm=cfg.ibalg)
                yield from smod.bcast(hier.low, seg_bytes[i - 1], root=0)
                yield from hier.up.wait(req)
                tasks.append("sbib")
            yield from smod.bcast(hier.low, seg_bytes[u - 1], root=0)
            tasks.append("sb")
        else:
            for _i in range(u):
                yield from smod.bcast(hier.low, seg_bytes[_i], root=0)
                tasks.append("sb")

    runtime.run(prog)
    u = 4  # 256KB / 64KB
    assert log[0] == ["ib"] + ["sbib"] * (u - 1) + ["sb"]
    assert log[2] == ["ib"] + ["sbib"] * (u - 1) + ["sb"]
    assert log[1] == ["sb"] * u
    assert log[3] == ["sb"] * u


def test_full_stack_allreduce_with_tuning_and_data():
    tuner = Autotuner(MACHINE, space=SPACE, warm_iters=4)
    report = tuner.tune(colls=("allreduce",), method="task+h")
    han = HanModule(decision_fn=report.table.as_decision_fn())
    n = 2048
    runtime = MPIRuntime(MACHINE)

    def prog(comm):
        mine = np.full(n, float(comm.rank + 1))
        out = yield from han.allreduce(comm, nbytes=n * 8, payload=mine,
                                       op=SUM)
        return out

    results = runtime.run(prog)
    want = np.full(n, float(sum(r + 1 for r in range(MACHINE.num_ranks))))
    for out in results:
        np.testing.assert_allclose(out, want)
