"""Serve-time guideline validation: integrity, monotonicity, composition."""

from repro.core.config import HanConfig
from repro.hardware import tiny_cluster
from repro.serve.guidelines import ERROR_REL_EXCESS, validate_decision
from repro.serve.store import decision_record

KiB = 1024


def _record(nbytes=64 * KiB, expected_time=1e-4, **kw):
    return decision_record(
        tiny_cluster(), "bcast", nbytes, HanConfig(fs=64 * KiB),
        expected_time=expected_time, **kw)


def test_clean_record_passes():
    v = validate_decision(_record())
    assert v.ok and v.severity == "ok" and v.cost_seconds == 0.0
    assert any(c.name == "config integrity" for c in v.checks)
    assert any(c.name == "finite expected_time" for c in v.checks)


def test_tampered_config_digest_fails_closed():
    rec = _record()
    rec["config_digest"] = "0" * 64
    v = validate_decision(rec)
    assert not v.ok and v.severity == "error"
    (bad,) = [c for c in v.checks if not c.passed]
    assert bad.name == "config integrity"


def test_undecodable_config_fails_closed():
    rec = _record()
    rec["config"]["imod"] = "not-a-module"
    v = validate_decision(rec)
    assert not v.ok
    assert any(c.name == "config decodes" and not c.passed for c in v.checks)


def test_non_finite_time_is_an_error():
    for t in (0.0, -1e-4, float("inf"), float("nan")):
        v = validate_decision(_record(expected_time=t))
        assert not v.ok and v.severity == "error"


def test_missing_time_validates_integrity_only():
    v = validate_decision(_record(expected_time=None))
    assert v.ok
    assert all(c.name.startswith("config") for c in v.checks)


def test_monotonicity_dip_costs_seconds():
    # the served 256KB point is 2x faster than the stored 64KB point:
    # a larger message must not be cheaper than a smaller one
    answer = _record(nbytes=256 * KiB, expected_time=1e-4)
    neighbor = _record(nbytes=64 * KiB, expected_time=2e-4)
    v = validate_decision(answer, neighbors=[neighbor])
    assert not v.ok
    (bad,) = [c for c in v.checks if not c.passed]
    assert bad.severity == "error"  # 100% relative excess
    assert abs(bad.cost_seconds - 1e-4) < 1e-12
    assert abs(v.cost_seconds - 1e-4) < 1e-12


def test_small_dip_grades_warn_not_error():
    # dip beyond the monotone tolerance but below the error threshold
    tn = 1e-4
    t = tn * (1.0 - ERROR_REL_EXCESS / 2)  # ~5% dip
    v = validate_decision(
        _record(nbytes=256 * KiB, expected_time=t),
        neighbors=[_record(nbytes=64 * KiB, expected_time=tn)])
    assert not v.ok and v.severity == "warn"


def test_consistent_neighbors_pass():
    v = validate_decision(
        _record(nbytes=256 * KiB, expected_time=4e-4),
        neighbors=[_record(nbytes=64 * KiB, expected_time=1e-4),
                   _record(nbytes=1024 * KiB, expected_time=1.6e-3)])
    assert v.ok
    assert any(c.name == "monotone nbytes" and c.passed for c in v.checks)


def test_composition_bound_violation():
    rec = decision_record(
        tiny_cluster(), "allreduce", 64 * KiB, HanConfig(fs=64 * KiB),
        expected_time=5e-4)
    # allreduce must not exceed reduce + bcast at the same point
    v = validate_decision(
        rec, composition_times={"reduce": 1e-4, "bcast": 1e-4})
    assert not v.ok
    (bad,) = [c for c in v.checks if not c.passed]
    assert "allreduce <= reduce+bcast" == bad.name
    assert bad.severity == "error"
    assert abs(bad.cost_seconds - 3e-4) < 1e-12
    # within the bound (plus tolerance) it passes
    ok = validate_decision(
        rec, composition_times={"reduce": 3e-4, "bcast": 3e-4})
    assert ok.ok


def test_composition_skipped_without_operand_times():
    rec = decision_record(
        tiny_cluster(), "allreduce", 64 * KiB, HanConfig(fs=64 * KiB),
        expected_time=5e-4)
    v = validate_decision(rec, composition_times={"reduce": 1e-4,
                                                  "bcast": None})
    assert v.ok
    assert not any("allreduce <=" in c.name for c in v.checks)
