"""Decision store: digests, shards, dedup, merge, compaction, writers."""

import json
import threading

from repro.core.config import HanConfig
from repro.hardware import shaheen2, tiny_cluster
from repro.serve.store import (
    SERVE_SCHEMA_VERSION,
    DecisionStore,
    band_digest,
    decision_record,
    point_key,
)

KiB = 1024


def _machine(num_nodes=2, ppn=2):
    return tiny_cluster(num_nodes=num_nodes, ppn=ppn)


def _config(fs=64 * KiB):
    return HanConfig(fs=fs)


def test_band_digest_erases_job_geometry():
    base = _machine()
    assert band_digest(base) == band_digest(base.scaled(num_nodes=8, ppn=4))
    # different hardware -> different band
    assert band_digest(base) != band_digest(shaheen2(num_nodes=2, ppn=2))


def test_point_key_is_content_addressed():
    band = band_digest(_machine())
    k = point_key(band, "bcast", 2, 2, 64 * KiB)
    assert k == point_key(band, "bcast", 2, 2, 64 * KiB)
    assert k != point_key(band, "bcast", 2, 2, 128 * KiB)
    assert k != point_key(band, "allreduce", 2, 2, 64 * KiB)
    assert k != point_key(band, "bcast", 4, 2, 64 * KiB)


def test_decision_record_contract():
    m = _machine()
    rec = decision_record(m, "bcast", 64 * KiB, _config(),
                          expected_time=1e-4, source="test")
    assert rec["schema_version"] == SERVE_SCHEMA_VERSION
    assert rec["band"] == band_digest(m)
    assert rec["key"] == point_key(rec["band"], "bcast", 2, 2, 64 * KiB)
    assert rec["n"] == 2 and rec["p"] == 2 and rec["commsize"] == 4
    assert rec["config"]["fs"] == 64 * KiB
    assert rec["config_digest"]


def test_memory_store_round_trip():
    m = _machine()
    store = DecisionStore()
    store.put_decision(m, "bcast", 64 * KiB, _config(), expected_time=1e-4)
    band = band_digest(m)
    rec = store.get(band, "bcast", 2, 2, 64 * KiB)
    assert rec is not None and rec["expected_time"] == 1e-4
    assert store.get(band, "bcast", 2, 2, 128 * KiB) is None
    assert len(store) == 1


def test_persistent_store_round_trip(tmp_path):
    m = _machine()
    store = DecisionStore(tmp_path / "ds")
    store.put_decision(m, "bcast", 64 * KiB, _config(), expected_time=1e-4)
    store.put_decision(m, "allreduce", 64 * KiB, _config(), expected_time=2e-4)
    band = band_digest(m)
    # a fresh handle reads the same shards off disk
    again = DecisionStore(tmp_path / "ds")
    assert again.bands() == [band]
    assert again.colls(band) == ["allreduce", "bcast"]
    assert again.get(band, "bcast", 2, 2, 64 * KiB)["expected_time"] == 1e-4
    # the band directory carries its marker
    marker = json.loads(
        (tmp_path / "ds" / band[:16] / "BAND.json").read_text())
    assert marker["band"] == band


def test_dedup_newer_wall_time_wins():
    m = _machine()
    store = DecisionStore()
    store.put_decision(m, "bcast", 64 * KiB, _config(64 * KiB),
                       expected_time=2e-4, wall_time=100.0)
    store.put_decision(m, "bcast", 64 * KiB, _config(128 * KiB),
                       expected_time=1e-4, wall_time=200.0)
    rec = store.get(band_digest(m), "bcast", 2, 2, 64 * KiB)
    assert rec["config"]["fs"] == 128 * KiB
    # an older retune does not overwrite the newer record
    store.put_decision(m, "bcast", 64 * KiB, _config(256 * KiB),
                       expected_time=3e-4, wall_time=50.0)
    rec = store.get(band_digest(m), "bcast", 2, 2, 64 * KiB)
    assert rec["config"]["fs"] == 128 * KiB
    assert len(store) == 1


def test_dedup_equal_time_breaks_on_config_digest():
    m = _machine()
    a = decision_record(m, "bcast", 64 * KiB, _config(64 * KiB),
                        wall_time=100.0)
    b = decision_record(m, "bcast", 64 * KiB, _config(128 * KiB),
                        wall_time=100.0)
    winner = min(a, b, key=lambda r: r["config_digest"])
    for order in ((a, b), (b, a)):
        store = DecisionStore()
        for rec in order:
            store.append(dict(rec))
        got = store.get(band_digest(m), "bcast", 2, 2, 64 * KiB)
        assert got["config_digest"] == winner["config_digest"]


def test_merge_is_union_and_order_independent(tmp_path):
    m = _machine()
    a = DecisionStore(tmp_path / "a")
    b = DecisionStore(tmp_path / "b")
    a.put_decision(m, "bcast", 64 * KiB, _config(64 * KiB), wall_time=1.0)
    a.put_decision(m, "bcast", 256 * KiB, _config(64 * KiB), wall_time=1.0)
    b.put_decision(m, "bcast", 64 * KiB, _config(128 * KiB), wall_time=2.0)
    b.put_decision(m, "allreduce", 64 * KiB, _config(64 * KiB), wall_time=1.0)

    def merged(first, second):
        into = DecisionStore()
        into.merge_from(first)
        into.merge_from(second)
        band = band_digest(m)
        return {
            coll: [(r["key"], r["config_digest"], r["wall_time"])
                   for r in into.records(band, coll)]
            for coll in into.colls(band)
        }

    ab, ba = merged(a, b), merged(b, a)
    assert ab == ba
    assert len(ab["bcast"]) == 2 and len(ab["allreduce"]) == 1
    # the contested point resolved to b's newer record in both orders
    contested = point_key(band_digest(m), "bcast", 2, 2, 64 * KiB)
    (rec,) = [r for r in ab["bcast"] if r[0] == contested]
    assert rec[2] == 2.0


def test_compact_preserves_records_and_is_idempotent(tmp_path):
    m = _machine()
    store = DecisionStore(tmp_path / "ds")
    for k in range(4):
        store.put_decision(m, "bcast", (64 << k) * KiB, _config(),
                           expected_time=1e-4 * (k + 1))
    band = band_digest(m)
    before = store.records(band, "bcast")
    stats = store.compact()
    assert stats["shards"] == 1 and stats["records"] == 4
    shard_dir = tmp_path / "ds" / band[:16] / "bcast"
    segs = sorted(f.name for f in shard_dir.glob("*.jsonl"))
    assert len(segs) == 1 and segs[0].startswith("seg-")
    assert store.records(band, "bcast") == before
    # recompacting an already-compact shard reproduces the same segment
    store.compact()
    assert sorted(f.name for f in shard_dir.glob("*.jsonl")) == segs
    # and a cold reader sees the same resolved view
    assert DecisionStore(tmp_path / "ds").records(band, "bcast") == before


def test_refresh_picks_up_other_writers(tmp_path):
    m = _machine()
    a = DecisionStore(tmp_path / "ds")
    b = DecisionStore(tmp_path / "ds")
    band = band_digest(m)
    a.put_decision(m, "bcast", 64 * KiB, _config())
    assert a.get(band, "bcast", 2, 2, 64 * KiB) is not None
    b.put_decision(m, "bcast", 128 * KiB, _config())
    # a's cached shard view predates b's append until refreshed
    assert a.get(band, "bcast", 2, 2, 128 * KiB) is None
    v = a.version
    a.refresh()
    assert a.version > v
    assert a.get(band, "bcast", 2, 2, 128 * KiB) is not None


def test_concurrent_append_writers(tmp_path):
    """Many store handles appending to one shard, lock-free."""
    m = _machine()
    sizes = [(64 + i) * KiB for i in range(40)]

    def writer(chunk):
        store = DecisionStore(tmp_path / "ds")  # own handle, own fd
        for s in chunk:
            store.put_decision(m, "bcast", s, _config(), expected_time=1e-4)

    threads = [
        threading.Thread(target=writer, args=(sizes[i::4],)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    store = DecisionStore(tmp_path / "ds")
    recs = store.records(band_digest(m), "bcast")
    assert len(recs) == len(sizes)
    assert sorted(r["nbytes"] for r in recs) == sorted(float(s) for s in sizes)


def test_torn_and_foreign_lines_are_skipped(tmp_path):
    m = _machine()
    store = DecisionStore(tmp_path / "ds")
    store.put_decision(m, "bcast", 64 * KiB, _config(), expected_time=1e-4)
    band = band_digest(m)
    shard = tmp_path / "ds" / band[:16] / "bcast" / "open.jsonl"
    with open(shard, "a") as fh:
        fh.write('{"key": "torn-write-from-a-dead-wri')  # no newline, torn
    again = DecisionStore(tmp_path / "ds")
    recs = again.records(band, "bcast")
    assert len(recs) == 1 and recs[0]["nbytes"] == float(64 * KiB)
