"""serve CLI: warm -> serve -> merge -> bench round trips and exit codes."""

import json

import pytest

from repro.core.config import HanConfig
from repro.serve.cli import main
from repro.serve.store import DecisionStore, band_digest, decision_record
from repro.serve.warm import parse_fleet

KiB = 1024

FLEET = "tiny_cluster:2x2"


def _warm(tmp_path, name="ds", fleet=FLEET):
    store = tmp_path / name
    assert main(["warm", "--fleet", fleet, "--colls", "bcast",
                 "--space", "quick", "--store", str(store)]) == 0
    return store


def test_parse_fleet():
    (a, b) = parse_fleet("tiny_cluster, shaheen2:4x8")
    assert (a.name, a.num_nodes, a.ppn) == ("tiny_cluster", 2, 2)
    assert (b.name, b.num_nodes, b.ppn) == ("shaheen2", 4, 8)
    with pytest.raises(ValueError):
        parse_fleet("no_such_preset")
    with pytest.raises(ValueError):
        parse_fleet("tiny_cluster:2by2")


def test_warm_then_serve_round_trip(tmp_path):
    store = _warm(tmp_path)
    machine = parse_fleet(FLEET)[0]
    band = band_digest(machine)
    recs = DecisionStore(store).records(band, "bcast")
    assert recs
    queries = tmp_path / "q.json"
    queries.write_text(json.dumps([
        {"coll": "bcast", "nbytes": recs[0]["nbytes"], "machine": FLEET},
        {"coll": "bcast", "nbytes": "1GB", "band": band, "commsize": 4},
    ]))
    out = tmp_path / "decisions.json"
    assert main(["serve", "--store", str(store), "--queries", str(queries),
                 "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["queries"] == 2
    assert doc["decisions"][0]["provenance"] == "exact"
    assert doc["decisions"][0]["config"] == recs[0]["config"]
    assert doc["decisions"][1]["provenance"] == "nearest"
    assert all(d["verdict"]["ok"] for d in doc["decisions"])


def test_serve_no_queries_exits_2(tmp_path):
    store = _warm(tmp_path)
    empty = tmp_path / "empty.json"
    empty.write_text("")
    assert main(["serve", "--store", str(store),
                 "--queries", str(empty)]) == 2


def test_strict_refusal_exits_3(tmp_path):
    machine = parse_fleet(FLEET)[0]
    rec = decision_record(machine, "bcast", 64 * KiB,
                          HanConfig(fs=64 * KiB), expected_time=1e-4)
    rec["config_digest"] = "0" * 64
    store = DecisionStore(tmp_path / "bad")
    store.append(rec)
    queries = tmp_path / "q.json"
    queries.write_text(json.dumps(
        [{"coll": "bcast", "nbytes": 64 * KiB, "machine": FLEET}]))
    args = ["--store", str(tmp_path / "bad"), "--queries", str(queries)]
    assert main(["serve"] + args) == 0  # flagged but served
    assert main(["serve", "--strict"] + args) == 3  # refused


def test_merge_unions_shards_across_presets(tmp_path):
    # two machine presets -> two bands; plus a second shape of the
    # first preset contesting the same band
    a = _warm(tmp_path, "a", fleet="tiny_cluster:2x2,small_cluster:2x2")
    b = _warm(tmp_path, "b", fleet="tiny_cluster:2x4")
    merged = tmp_path / "merged"
    assert main(["merge", "--into", str(merged), str(a), str(b),
                 "--compact"]) == 0
    union_store = DecisionStore(tmp_path / "union")
    union_store.merge_from(DecisionStore(a))
    union_store.merge_from(DecisionStore(b))
    got = DecisionStore(merged)
    assert sorted(got.bands()) == sorted(union_store.bands())
    assert len(got.bands()) == 2
    # post-merge query results equal the pre-merge union: every stored
    # point of either source answers identically from the merged store
    from repro.serve.service import DecisionService, Query

    svc, ref = DecisionService(got), DecisionService(union_store)
    for band in union_store.bands():
        for coll in union_store.colls(band):
            for rec in union_store.records(band, coll):
                q = Query(coll, rec["nbytes"], commsize=rec["commsize"],
                          band=band)
                d, e = svc.decide(q), ref.decide(q)
                assert (d.config, d.provenance, d.expected_time,
                        d.source_key) == (e.config, e.provenance,
                                          e.expected_time, e.source_key)


def test_bench_quick_emits_artifact(tmp_path):
    out = tmp_path / "BENCH_serve_qps.json"
    # floor=1: the artifact contract is under test here, not throughput
    assert main(["bench", "--quick", "--fleet", FLEET, "--queries", "200",
                 "--repeat", "1", "--floor", "1", "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["floor_ok"] is True
    assert doc["qps"]["exact"] > 0 and doc["qps"]["mixed"] > 0
    assert doc["store"]["records"] > 0
    # the workload generator produced the provenance it intended
    assert doc["workload_provenance"]["exact->exact"] == 200
    assert doc["workload_provenance"]["default->default"] == 200
    assert doc["workload_provenance"]["nearest->nearest"] == 200


def test_bench_floor_failure_exits_1(tmp_path):
    out = tmp_path / "bench.json"
    assert main(["bench", "--quick", "--fleet", FLEET, "--queries", "50",
                 "--repeat", "1", "--floor", "1e18",
                 "--out", str(out)]) == 1
    assert json.loads(out.read_text())["floor_ok"] is False
