"""Decision serving: provenance, fallbacks, strict mode, observability."""

import pytest

from repro.core.config import HanConfig
from repro.core.han import HanModule
from repro.hardware import tiny_cluster
from repro.serve.service import DecisionService, Query
from repro.serve.store import DecisionStore, band_digest, decision_record
from repro.serve.warm import WARM_SPACES
from repro.tuning import Autotuner

KiB = 1024


def _machine(num_nodes=2, ppn=2):
    return tiny_cluster(num_nodes=num_nodes, ppn=ppn)


def _warmed(colls=("bcast",)):
    machine = _machine()
    store = DecisionStore()
    tuner = Autotuner(machine, space=WARM_SPACES["quick"])
    report = tuner.tune(colls=colls, method="task+h")
    store.put_report(machine, report)
    return machine, store, report


def _put(store, machine, nbytes, fs, t, coll="bcast"):
    store.put_decision(machine, coll, nbytes, HanConfig(fs=fs),
                       expected_time=t)


def test_exact_hits_are_bit_identical_to_tuner_winners():
    machine, store, report = _warmed(colls=("bcast", "allreduce"))
    svc = DecisionService(store)
    assert report.table.entries
    for (coll, n, p, m), cfg in report.table.entries.items():
        d = svc.decide(Query(coll=coll, nbytes=m, machine=machine))
        assert d.provenance == "exact"
        assert d.config == cfg
        assert d.verdict.ok
    assert svc.stats()["decisions"] == {"exact": len(report.table.entries)}


def test_empty_store_serves_default():
    svc = DecisionService(DecisionStore())
    m = _machine()
    d = svc.decide(Query(coll="bcast", nbytes=64 * KiB, machine=m))
    assert d.provenance == "default"
    assert d.config == HanModule.default_config(64 * KiB)
    assert d.expected_time is None and d.verdict.ok and not d.refused


def test_single_point_store():
    machine = _machine()
    store = DecisionStore()
    _put(store, machine, 64 * KiB, 64 * KiB, 1e-4)
    svc = DecisionService(store)
    hit = svc.decide(Query(coll="bcast", nbytes=64 * KiB, machine=machine))
    assert hit.provenance == "exact" and hit.config.fs == 64 * KiB
    # every other size resolves to the one sample
    for m in (1.0, 8 * KiB, 4096 * KiB):
        d = svc.decide(Query(coll="bcast", nbytes=m, machine=machine))
        assert d.provenance == "nearest" and d.config.fs == 64 * KiB


def test_out_of_range_is_nearest_on_both_ends():
    machine = _machine()
    store = DecisionStore()
    _put(store, machine, 1 * KiB, 64 * KiB, 1e-4)
    _put(store, machine, 4 * KiB, 128 * KiB, 2e-4)
    svc = DecisionService(store)
    lo = svc.decide(Query(coll="bcast", nbytes=64.0, machine=machine))
    assert lo.provenance == "nearest" and lo.config.fs == 64 * KiB
    hi = svc.decide(Query(coll="bcast", nbytes=64 * KiB, machine=machine))
    assert hi.provenance == "nearest" and hi.config.fs == 128 * KiB


def test_interior_query_interpolates_time_tie_breaks_canonically():
    machine = _machine()
    store = DecisionStore()
    _put(store, machine, 1 * KiB, 64 * KiB, 1e-4)
    _put(store, machine, 4 * KiB, 128 * KiB, 2e-4)
    svc = DecisionService(store)
    # 2KB is log-equidistant from 1KB and 4KB: the canonical (smaller
    # nbytes) sample's config is served, never insertion-order luck
    d = svc.decide(Query(coll="bcast", nbytes=2 * KiB, machine=machine))
    assert d.provenance == "interpolated"
    assert d.config.fs == 64 * KiB
    # expected time is log-log interpolated between the brackets
    assert d.expected_time == pytest.approx(1.5e-4)


def test_geometry_fallback_prefers_own_split_then_log_distance():
    machine = _machine()  # 2x2, commsize 4
    store = DecisionStore()
    # two splits of commsize 4 with different winners
    _put(store, machine, 64 * KiB, 64 * KiB, 1e-4)
    store.put_decision(machine, "bcast", 64 * KiB, HanConfig(fs=256 * KiB),
                       expected_time=1e-4, n=4, p=1)
    svc = DecisionService(store)
    # ambiguous commsize + no machine: falls back, still answers
    d = svc.decide(Query(coll="bcast", nbytes=64 * KiB, commsize=4,
                         band=band_digest(machine)))
    assert d.provenance in ("exact", "nearest")
    # with the machine present its own (2, 2) split wins the tie
    own = svc.decide(Query(coll="bcast", nbytes=64 * KiB, machine=machine))
    assert own.config.fs == 64 * KiB
    # a different commsize resolves to the nearest stored geometry
    far = svc.decide(Query(coll="bcast", nbytes=64 * KiB, commsize=64,
                           band=band_digest(machine)))
    assert far.provenance == "nearest"


def test_injected_violation_is_flagged_and_refused_under_strict():
    machine = _machine()
    rec = decision_record(machine, "bcast", 64 * KiB,
                          HanConfig(fs=64 * KiB), expected_time=1e-4)
    rec["config_digest"] = "0" * 64  # tampered entry
    for strict in (False, True):
        store = DecisionStore()
        store.append(dict(rec))
        svc = DecisionService(store, strict=strict)
        d = svc.decide(Query(coll="bcast", nbytes=64 * KiB, machine=machine))
        assert not d.verdict.ok
        assert svc.stats()["violations"] == 1
        if strict:
            assert d.refused and d.config is None
            assert d.rejected_config == HanConfig(fs=64 * KiB)
            assert svc.stats()["refused"] == 1
        else:
            assert not d.refused and d.config == HanConfig(fs=64 * KiB)
            assert svc.stats()["refused"] == 0


def test_mixed_thousand_query_batch_provenance():
    machine, store, report = _warmed(colls=("bcast", "allreduce"))
    band = band_digest(machine)
    samples = [(coll, m) for (coll, _n, _p, m) in report.table.entries]
    queries, want = [], []
    for i in range(1000):
        coll, m = samples[i % len(samples)]
        kind = ("exact", "interpolated", "nearest", "default")[i % 4]
        if kind == "exact":
            queries.append(Query(coll, m, machine=machine))
        elif kind == "interpolated":
            sizes = sorted(s for c, s in samples if c == coll)
            mid = (sizes[0] * sizes[1]) ** 0.5
            queries.append(Query(coll, mid, machine=machine))
        elif kind == "nearest":
            queries.append(Query(coll, max(s for c, s in samples
                                           if c == coll) * 2.0 ** 30,
                                 machine=machine))
        else:
            queries.append(Query(coll, m, commsize=4, band="f" * 64))
        want.append(kind)
    svc = DecisionService(store)
    decisions = svc.decide_batch(queries)
    assert [d.provenance for d in decisions] == want
    # every answer carries a verdict; the tuned shard is clean
    assert all(d.verdict.ok for d in decisions)
    stats = svc.stats()
    assert stats["queries"] == 1000
    assert stats["decisions"] == {k: 250 for k in
                                  ("exact", "interpolated", "nearest",
                                   "default")}


def test_batch_metrics_and_spans():
    machine, store, _ = _warmed()
    svc = DecisionService(store, max_spans=2)
    for _ in range(3):
        svc.decide_batch([Query("bcast", 64 * KiB, machine=machine)])
    assert len(svc.spans) == 2  # bounded
    assert svc.spans[0].track == "serve"
    names = {c.name for c in svc.metrics.counters}
    assert "serve.decisions" in names
    hist = svc.metrics.histogram("serve.batch_seconds")
    assert hist.count == 3


def test_as_decision_fn_matches_table_and_defaults_on_refusal():
    machine, store, report = _warmed()
    fn = DecisionService(store).as_decision_fn(machine)
    for (coll, n, p, m), cfg in report.table.entries.items():
        assert fn(n, p, m, coll) == cfg
    # strict refusal falls back to the untuned default, never None
    rec = decision_record(machine, "bcast", 64.0, HanConfig(fs=1 * KiB),
                          expected_time=1e-4)
    rec["config_digest"] = "0" * 64
    bad = DecisionStore()
    bad.append(rec)
    strict_fn = DecisionService(bad, strict=True).as_decision_fn(machine)
    assert strict_fn(2, 2, 64.0, "bcast") == HanModule.default_config(64.0)


def test_query_needs_platform_identity():
    svc = DecisionService(DecisionStore())
    with pytest.raises(ValueError):
        svc.decide(Query(coll="bcast", nbytes=64.0))
    with pytest.raises(ValueError):
        svc.decide(Query(coll="bcast", nbytes=64.0, band="f" * 64))


def test_service_sees_store_mutations():
    machine = _machine()
    store = DecisionStore()
    svc = DecisionService(store)
    q = Query(coll="bcast", nbytes=64 * KiB, machine=machine)
    assert svc.decide(q).provenance == "default"
    _put(store, machine, 64 * KiB, 64 * KiB, 1e-4)
    assert svc.decide(q).provenance == "exact"  # index cache invalidated
