"""The fault injectors: determinism contract and per-injector behavior."""

import dataclasses

import numpy as np
import pytest

from repro.core.han import HanModule
from repro.faults import (
    FaultPlan,
    FaultyMachineSpec,
    LinkDegradation,
    LinkFlap,
    MessageJitter,
    OsNoise,
    RankSlowdown,
    spawn_generators,
)
from repro.hardware import small_cluster, tiny_cluster
from repro.mpi import MPIRuntime

KiB = 1024


def ring5(ppn=2):
    return dataclasses.replace(
        small_cluster(num_nodes=5, ppn=ppn),
        topology="torus", topo_params={"dims": (5,)},
    )


def time_allreduce(machine, nbytes=256 * KiB, han=None):
    """Makespan + correctness-checked result of one world allreduce."""
    runtime = MPIRuntime(machine)
    han = han or HanModule()

    def prog(comm):
        payload = np.full(int(nbytes // 8), float(comm.rank + 1))
        out = yield from han.allreduce(comm, nbytes, payload=payload)
        return comm.now, float(out[0])

    results = runtime.run(prog)
    expect = sum(range(1, machine.num_ranks + 1))
    assert all(v == expect for _, v in results)
    return max(t for t, _ in results)


# -- determinism contract ---------------------------------------------------------


def test_empty_plan_is_bit_identical_to_no_plan():
    base = tiny_cluster(num_nodes=2, ppn=2)
    t0 = time_allreduce(base)
    t1 = time_allreduce(FaultyMachineSpec.wrap(base, FaultPlan()))
    assert t1 == t0


def test_amplitude_zero_is_bit_identical_to_no_plan():
    base = tiny_cluster(num_nodes=2, ppn=2)
    plan = (
        FaultPlan(seed=3)
        .add(OsNoise(amplitude=0.0, per_op=0.0))
        .add(MessageJitter(amplitude=0.0))
        .add(LinkDegradation(("nic", 0), factor=1.0))
        .add(RankSlowdown(rank=1, factor=1.0))
    )
    assert time_allreduce(FaultyMachineSpec.wrap(base, plan)) == time_allreduce(base)


def test_same_seed_and_trial_reproduce_exactly():
    base = tiny_cluster(num_nodes=2, ppn=2)
    plan = FaultPlan(seed=11).add(OsNoise(amplitude=0.5))
    t0 = time_allreduce(FaultyMachineSpec.wrap(base, plan))
    t1 = time_allreduce(FaultyMachineSpec.wrap(base, plan))
    assert t0 == t1


def test_trials_are_independent_realizations():
    base = tiny_cluster(num_nodes=2, ppn=2)
    plan = FaultPlan(seed=11).add(OsNoise(amplitude=0.5))
    times = {
        trial: time_allreduce(FaultyMachineSpec.wrap(base, plan.for_trial(trial)))
        for trial in range(3)
    }
    assert len(set(times.values())) == 3


def test_different_seeds_differ():
    base = tiny_cluster(num_nodes=2, ppn=2)
    mk = lambda s: FaultyMachineSpec.wrap(  # noqa: E731
        base, FaultPlan(seed=s).add(OsNoise(amplitude=0.5))
    )
    assert time_allreduce(mk(1)) != time_allreduce(mk(2))


def test_spawn_generators_independent_and_reproducible():
    a = spawn_generators(5, 3)
    b = spawn_generators(5, 3)
    draws_a = [g.random() for g in a]
    draws_b = [g.random() for g in b]
    assert draws_a == draws_b
    assert len(set(draws_a)) == 3


# -- individual injectors ---------------------------------------------------------


def test_os_noise_slows_the_collective():
    base = tiny_cluster(num_nodes=2, ppn=2)
    plan = FaultPlan(seed=1).add(OsNoise(amplitude=0.5))
    assert time_allreduce(FaultyMachineSpec.wrap(base, plan)) > time_allreduce(base)


def test_os_noise_ranks_filter():
    base = tiny_cluster(num_nodes=2, ppn=2)
    # noise confined to rank 0 still perturbs (rank 0 is on the critical
    # path) but differs from whole-machine noise
    all_ranks = FaultPlan(seed=1).add(OsNoise(amplitude=0.5))
    one_rank = FaultPlan(seed=1).add(OsNoise(amplitude=0.5, ranks=(0,)))
    t_all = time_allreduce(FaultyMachineSpec.wrap(base, all_ranks))
    t_one = time_allreduce(FaultyMachineSpec.wrap(base, one_rank))
    t_base = time_allreduce(base)
    assert t_one > t_base
    assert t_one != t_all


def test_os_noise_prob_zero_hits_nobody():
    base = tiny_cluster(num_nodes=2, ppn=2)
    plan = FaultPlan(seed=1).add(OsNoise(amplitude=0.5, prob=0.0))
    assert time_allreduce(FaultyMachineSpec.wrap(base, plan)) == time_allreduce(base)


def test_message_jitter_slows_and_reproduces():
    base = tiny_cluster(num_nodes=2, ppn=2)
    plan = FaultPlan(seed=2).add(MessageJitter(amplitude=1e-5))
    t0 = time_allreduce(FaultyMachineSpec.wrap(base, plan))
    t1 = time_allreduce(FaultyMachineSpec.wrap(base, plan))
    assert t0 > time_allreduce(base)
    assert t0 == t1


def test_rank_slowdown_is_deterministic_and_windowed():
    base = tiny_cluster(num_nodes=2, ppn=2)
    slow = FaultPlan().add(RankSlowdown(rank=0, factor=4.0))
    t_slow = time_allreduce(FaultyMachineSpec.wrap(base, slow))
    assert t_slow > time_allreduce(base)
    # a window that closes before the run starts is the identity
    closed = FaultPlan().add(RankSlowdown(rank=0, factor=4.0, start=0.0, end=0.0))
    assert time_allreduce(FaultyMachineSpec.wrap(base, closed)) == time_allreduce(base)


def test_link_degradation_slows_inter_node_traffic():
    base = ring5()
    plan = FaultPlan().add(LinkDegradation(("link", 0, 1), factor=0.05))
    assert time_allreduce(FaultyMachineSpec.wrap(base, plan)) > time_allreduce(base)


def test_link_flap_window_delays_then_restores():
    base = ring5()
    t_base = time_allreduce(base)
    plan = FaultPlan().add(LinkFlap(("link", 0, 1), start=t_base / 4, end=5e-3))
    t_flap = time_allreduce(FaultyMachineSpec.wrap(base, plan))
    assert t_flap >= 5e-3  # stalled across the outage, finished after


def test_nic_and_membus_targets_resolve():
    base = tiny_cluster(num_nodes=2, ppn=2)
    for target in (("nic", 0), ("nic_tx", 0), ("nic_rx", 1), ("membus", 0)):
        plan = FaultPlan().add(LinkDegradation(target, factor=0.1))
        assert time_allreduce(FaultyMachineSpec.wrap(base, plan)) > time_allreduce(base)


def test_injector_validation():
    with pytest.raises(ValueError):
        LinkDegradation(("link", 0, 1), factor=-0.5)
    with pytest.raises(ValueError):
        LinkDegradation(("link", 0, 1), factor=0.5, start=3.0, end=1.0)
    with pytest.raises(ValueError):
        OsNoise(amplitude=-1.0)
    with pytest.raises(ValueError):
        OsNoise(prob=1.5)
    with pytest.raises(ValueError):
        MessageJitter(amplitude=-1e-6)
    with pytest.raises(ValueError):
        RankSlowdown(rank=0, factor=0.5)


# -- the wrapper ------------------------------------------------------------------


def test_wrap_preserves_machine_fields_and_pristine_round_trips():
    base = tiny_cluster(num_nodes=2, ppn=2)
    plan = FaultPlan(seed=9).add(OsNoise(amplitude=0.2))
    faulty = FaultyMachineSpec.wrap(base, plan)
    assert faulty.num_ranks == base.num_ranks
    assert faulty.fault_plan is plan
    assert faulty.pristine() == base


def test_scaled_keeps_the_fault_plan():
    base = tiny_cluster(num_nodes=2, ppn=2)
    plan = FaultPlan(seed=9).add(OsNoise(amplitude=0.2))
    scaled = FaultyMachineSpec.wrap(base, plan).scaled(num_nodes=3)
    assert isinstance(scaled, FaultyMachineSpec)
    assert scaled.fault_plan is plan
    assert scaled.num_nodes == 3


def test_describe_names_injectors():
    plan = FaultPlan(seed=1).add(OsNoise(), LinkFlap(("link", 0, 1)))
    text = plan.describe()
    assert "OsNoise" in text and "LinkFlap" in text


def test_link_target_with_no_resources_is_an_error():
    # the crossbar has no internal links: a "link" kill there must fail
    # loudly instead of silently perturbing nothing
    base = tiny_cluster(num_nodes=2, ppn=2)
    plan = FaultPlan().add(LinkFlap(("link", 0, 1)))
    with pytest.raises(ValueError, match="no hardware resources"):
        MPIRuntime(FaultyMachineSpec.wrap(base, plan))
