"""The shared entropy-tree contract (`repro.util.entropy`).

FaultPlan's seeding discipline was extracted into ``repro.util.entropy``
so TrafficPlan (``repro.tenancy``) derives child seeds through the same
documented tree.  These tests pin the contract two ways: structurally
(the helper must agree with raw ``numpy.random.SeedSequence``) and
behaviorally (existing FaultPlan realizations must stay bit-identical
across the extraction — the floats below were produced by the
pre-extraction implementation).
"""

import numpy as np

from repro.core.config import HanConfig
from repro.faults import FaultPlan, MessageJitter, OsNoise, spawn_generators
from repro.hardware import tiny_cluster
from repro.tuning import measure_collective
from repro.util.entropy import entropy_children, entropy_root, generators_from

KiB = 1024


def test_root_matches_raw_seedsequence():
    a = entropy_root(42, trial=3)
    b = np.random.SeedSequence(42, spawn_key=(3,))
    assert a.entropy == b.entropy and a.spawn_key == b.spawn_key
    assert np.random.PCG64(a).state == np.random.PCG64(b).state


def test_trialless_root_is_not_trial_zero():
    # SeedSequence(seed) and SeedSequence(seed, spawn_key=(0,)) are
    # different tree nodes; spawn_generators() relies on the former
    bare = entropy_root(5)
    t0 = entropy_root(5, trial=0)
    assert bare.spawn_key == ()
    assert np.random.PCG64(bare).state != np.random.PCG64(t0).state


def test_children_match_raw_spawn():
    ours = entropy_children(9, 4, trial=1)
    raw = np.random.SeedSequence(9, spawn_key=(1,)).spawn(4)
    for a, b in zip(ours, raw):
        assert np.random.PCG64(a).state == np.random.PCG64(b).state


def test_none_seed_falls_back_to_zero():
    a = entropy_root(None, trial=2)
    b = entropy_root(0, trial=2)
    assert np.random.PCG64(a).state == np.random.PCG64(b).state


def test_generators_are_independent_streams():
    g1, g2 = generators_from(entropy_children(123, 2, trial=0))
    assert g1.random(8).tolist() != g2.random(8).tolist()


def test_spawn_generators_unchanged():
    # the FaultPlan helper must still derive from the *trial-less* root
    gens = spawn_generators(77, 3)
    raw = [
        np.random.Generator(np.random.PCG64(s))
        for s in np.random.SeedSequence(77).spawn(3)
    ]
    for a, b in zip(gens, raw):
        assert a.random(4).tolist() == b.random(4).tolist()


def test_faultplan_realizations_pinned_bit_identical():
    # Produced by the pre-extraction FaultPlan.install (PR 1 lineage);
    # any change to the tree shape — root construction, spawn order,
    # per-injector child assignment — shows up here.
    machine = tiny_cluster(num_nodes=2, ppn=2)
    cfg = HanConfig(
        fs=64 * KiB, imod="adapt", smod="sm", ibalg="chain", iralg="chain"
    )
    plan = FaultPlan(seed=7).add(
        OsNoise(amplitude=0.5), MessageJitter(amplitude=0.3)
    )
    meas = measure_collective(
        machine, "allreduce", 64 * KiB, cfg, fault_plan=plan, trials=3
    )
    assert meas.trial_times == (
        1.2926328798590419,
        1.5997820799938063,
        0.4855535545156315,
    )
