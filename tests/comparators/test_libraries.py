"""Tests for the comparator MPI libraries and the benchmark harnesses."""

import numpy as np
import pytest

from repro.bench import imb_run, netpipe_run
from repro.comparators import (
    CrayMPI,
    IntelMPI,
    MVAPICH2,
    OpenMPIDefault,
    OpenMPIHan,
    library_by_name,
)
from repro.hardware import tiny_cluster
from repro.mpi import MPIRuntime, SUM
from repro.netsim.profiles import craympi_profile, openmpi_profile
from tests.colls.helpers import rank_array

ALL_LIBS = [OpenMPIDefault, OpenMPIHan, CrayMPI, IntelMPI, MVAPICH2]
MACHINE = tiny_cluster(num_nodes=3, ppn=2)


def run_lib(lib, prog):
    runtime = MPIRuntime(MACHINE, profile=lib.profile)
    results = runtime.run(prog)
    return results, runtime.engine.now


def test_registry():
    for name in ("openmpi", "han", "craympi", "intelmpi", "mvapich2"):
        assert library_by_name(name).name == name
    with pytest.raises(ValueError):
        library_by_name("lam-mpi")


@pytest.mark.parametrize("lib_cls", ALL_LIBS)
@pytest.mark.parametrize("nbytes", [256, 1024 * 1024])
def test_bcast_correct(lib_cls, nbytes):
    lib = lib_cls()
    n = nbytes // 8
    data = np.arange(n, dtype=np.float64)

    def prog(comm):
        payload = data if comm.rank == 0 else None
        out = yield from lib.bcast(comm, nbytes, root=0, payload=payload)
        return out

    results, t = run_lib(lib, prog)
    for r, out in enumerate(results):
        np.testing.assert_array_equal(out, data, err_msg=f"{lib.name} rank {r}")
    assert t > 0


@pytest.mark.parametrize("lib_cls", ALL_LIBS)
@pytest.mark.parametrize("nbytes", [256, 1024 * 1024])
def test_allreduce_correct(lib_cls, nbytes):
    lib = lib_cls()
    n = nbytes // 8

    def prog(comm):
        out = yield from lib.allreduce(
            comm, nbytes, payload=rank_array(comm.rank, n), op=SUM
        )
        return out

    results, _ = run_lib(lib, prog)
    want = np.sum([rank_array(r, n) for r in range(6)], axis=0)
    for r, out in enumerate(results):
        np.testing.assert_allclose(out, want, err_msg=f"{lib.name} rank {r}")


@pytest.mark.parametrize("lib_cls", ALL_LIBS)
def test_barrier(lib_cls):
    lib = lib_cls()
    exits = {}

    def prog(comm):
        yield from comm.compute(0.1 * comm.rank)
        yield from lib.barrier(comm)
        exits[comm.rank] = comm.now

    run_lib(lib, prog)
    assert min(exits.values()) >= 0.5


class TestIMB:
    def test_imb_returns_monotonic_enough_times(self):
        lib = OpenMPIDefault()
        res = imb_run(MACHINE, lib, "bcast", sizes=[1024, 64 * 1024, 1024 * 1024])
        assert res.library == "openmpi"
        assert len(res.times) == 3
        assert res.times[2] > res.times[0]

    def test_imb_speedup_helper(self):
        han = imb_run(MACHINE, OpenMPIHan(), "bcast", sizes=[1024 * 1024])
        omp = imb_run(MACHINE, OpenMPIDefault(), "bcast", sizes=[1024 * 1024])
        sp = han.speedup_over(omp)
        assert sp[1024 * 1024] == pytest.approx(
            omp.times[0] / han.times[0]
        )

    def test_imb_allreduce_and_barrier(self):
        lib = CrayMPI()
        ar = imb_run(MACHINE, lib, "allreduce", sizes=[4096])
        assert ar.times[0] > 0
        br = imb_run(MACHINE, lib, "barrier", sizes=[0])
        assert br.times[0] > 0

    def test_unknown_collective_rejected(self):
        with pytest.raises(ValueError):
            imb_run(MACHINE, OpenMPIDefault(), "alltoallw", sizes=[8])


class TestNetpipe:
    def test_bandwidth_increases_with_size(self):
        res = netpipe_run(
            MACHINE, openmpi_profile(), sizes=[512, 64 * 1024, 8 * 1024 * 1024]
        )
        assert res.bandwidth[2] > res.bandwidth[0]

    def test_cray_beats_openmpi_midrange(self):
        """Fig 11: Cray MPI wins 16KB..512KB, peaks converge."""
        sizes = [64 * 1024, 16 * 1024 * 1024]
        omp = netpipe_run(MACHINE, openmpi_profile(), sizes=sizes)
        cray = netpipe_run(MACHINE, craympi_profile(), sizes=sizes)
        assert cray.bandwidth_at(64 * 1024) > omp.bandwidth_at(64 * 1024) * 1.5
        ratio = cray.bandwidth_at(16 * 1024 * 1024) / omp.bandwidth_at(
            16 * 1024 * 1024
        )
        assert 0.9 < ratio < 1.15

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            netpipe_run(tiny_cluster(num_nodes=1, ppn=2), openmpi_profile(), [8])


class TestIMBExtendedCollectives:
    @pytest.mark.parametrize(
        "coll", ["reduce", "gather", "allgather"]
    )
    def test_extended_collectives_run_for_both_libraries(self, coll):
        for lib in (OpenMPIDefault(), OpenMPIHan()):
            res = imb_run(MACHINE, lib, coll, sizes=[4096, 256 * 1024])
            assert res.times[0] > 0
            assert res.times[1] > res.times[0]

    def test_han_alltoall_through_imb(self):
        res = imb_run(MACHINE, OpenMPIHan(), "alltoall", sizes=[4096])
        assert res.times[0] > 0

    def test_unsupported_collective_raises(self):
        from repro.sim import DeadlockError

        with pytest.raises((ValueError, DeadlockError)):
            imb_run(MACHINE, OpenMPIDefault(), "alltoall", sizes=[8])
