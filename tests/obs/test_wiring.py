"""Wiring + non-perturbation acceptance.

The load-bearing guarantee: attaching a recorder must not change a
single simulated timestamp (every hook is behind one ``engine.obs is not
None`` check on the non-timing side), so tracing-disabled runs are
bit-identical to the pre-instrumentation simulator.
"""

import json
import os

import pytest

from repro.core.config import HanConfig
from repro.hardware.machines import small_cluster
from repro.mpi.runtime import MPIRuntime
from repro.obs import ObsRecorder, validate_chrome_trace
from repro.obs.cli import main as cli_main
from repro.obs.cli import parse_nbytes
from repro.tuning.measure import measure_collective


def _run_han(nbytes, attach):
    from repro.core.han import HanModule

    machine = small_cluster(num_nodes=2, ppn=4)
    runtime = MPIRuntime(machine)
    han = HanModule()
    durations = {}

    def prog(comm):
        yield from comm.barrier()
        t0 = comm.now
        yield from han.bcast(comm, nbytes)
        durations[comm.rank] = comm.now - t0

    if attach:
        with ObsRecorder(runtime.engine):
            runtime.run(prog)
    else:
        runtime.run(prog)
    return durations, runtime.engine.now


@pytest.mark.parametrize("nbytes", [1 << 12, 1 << 20])
def test_recorder_does_not_perturb_simulated_time(nbytes):
    plain, t_plain = _run_han(nbytes, attach=False)
    traced, t_traced = _run_han(nbytes, attach=True)
    assert t_plain == t_traced  # bit-identical, no tolerance
    assert plain == traced


def test_measure_collective_trace_out_identical_and_valid(tmp_path):
    machine = small_cluster(num_nodes=2, ppn=2)
    cfg = HanConfig()
    base = measure_collective(machine, "bcast", 1 << 18, cfg)
    path = tmp_path / "meas.json"
    traced = measure_collective(
        machine, "bcast", 1 << 18, cfg, trace_out=str(path)
    )
    assert traced.time == base.time  # bit-identical
    assert traced.per_rank == base.per_rank
    doc = json.loads(path.read_text())
    assert validate_chrome_trace(doc) is None


def test_netpipe_trace_out(tmp_path):
    from repro.bench import netpipe_run
    from repro.netsim.profiles import openmpi_profile

    machine = small_cluster(num_nodes=2, ppn=2)
    path = tmp_path / "netpipe.json"
    plain = netpipe_run(machine, openmpi_profile(), [1024.0, 65536.0])
    traced = netpipe_run(
        machine, openmpi_profile(), [1024.0, 65536.0],
        trace_out=str(path),
    )
    assert traced.oneway == plain.oneway
    doc = json.loads(path.read_text())
    assert validate_chrome_trace(doc) is None
    assert doc["otherData"]["bench"] == "netpipe"


def test_imb_trace_out(tmp_path):
    from repro.bench import imb_run
    from repro.comparators import library_by_name

    machine = small_cluster(num_nodes=2, ppn=2)
    lib = library_by_name("openmpi")
    path = tmp_path / "imb.json"
    plain = imb_run(machine, lib, "bcast", [4096.0])
    traced = imb_run(machine, lib, "bcast", [4096.0], trace_out=str(path))
    assert traced.times == plain.times
    doc = json.loads(path.read_text())
    assert validate_chrome_trace(doc) is None
    assert doc["otherData"]["coll"] == "bcast"


def test_autotuner_trace_out_writes_winner_traces(tmp_path):
    from repro.tuning import Autotuner, SearchSpace

    machine = small_cluster(num_nodes=2, ppn=2)
    space = SearchSpace(
        seg_sizes=(65536,),
        messages=[65536.0],
        adapt_algorithms=("chain",),
        inner_segs=(None,),
    )
    out = tmp_path / "traces"
    tuner = Autotuner(machine, space=space, warm_iters=2,
                      trace_out=str(out))
    report = tuner.tune(colls=("bcast",), method="task")
    assert report.table.entries
    files = sorted(os.listdir(out))
    assert files == ["bcast_65536B.json"]
    doc = json.loads((out / files[0]).read_text())
    assert validate_chrome_trace(doc) is None


# -- CLI -------------------------------------------------------------


def test_parse_nbytes():
    assert parse_nbytes("64") == 64.0
    assert parse_nbytes("64K") == 65536.0
    assert parse_nbytes("1m") == 1048576.0
    assert parse_nbytes("2MB") == 2 * 1048576.0
    assert parse_nbytes("1G") == float(1 << 30)


def test_cli_record_report_critpath_export_diff(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    trace = tmp_path / "a.json"
    args = ["record", "--coll", "bcast", "--nbytes", "256K",
            "--machine", "small_cluster", "--nodes", "2", "--ppn", "2",
            "--out", str(a), "--trace-out", str(trace)]
    assert cli_main(args) == 0
    assert cli_main(["record", "--coll", "bcast", "--nbytes", "512K",
                     "--nodes", "2", "--ppn", "2", "--out", str(b)]) == 0
    doc = json.loads(trace.read_text())
    assert validate_chrome_trace(doc) is None

    assert cli_main(["report", str(a)]) == 0
    out = capsys.readouterr().out
    assert "phases" in out and "resources" in out

    assert cli_main(["critpath", str(a), "--segments"]) == 0
    out = capsys.readouterr().out
    assert "coverage 100.0%" in out

    assert cli_main(["diff", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "sim_time" in out and "critical path:" in out

    trace2 = tmp_path / "a2.json"
    assert cli_main(["export", str(a), str(trace2)]) == 0
    assert validate_chrome_trace(json.loads(trace2.read_text())) is None


def test_cli_diff_json_mode(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    assert cli_main(["record", "--nbytes", "64K", "--nodes", "2",
                     "--ppn", "2", "--out", str(a)]) == 0
    capsys.readouterr()  # drain the record summary line
    assert cli_main(["diff", str(a), str(a), "--json"]) == 0
    d = json.loads(capsys.readouterr().out)
    assert d["sim_time"]["delta"] == 0.0
