"""Insight engine: guidelines, MAD regression bands, straggler detection.

The integration test at the bottom is the acceptance check for the
metrics plane: a seeded :class:`RankSlowdown` must trip exactly the
straggler-skew insight while a clean run of the same workload passes
everything.
"""

import pytest

from repro.core.config import HanConfig
from repro.faults.injectors import RankSlowdown
from repro.faults.plan import FaultPlan
from repro.hardware.machines import shaheen2
from repro.obs import insights as ins
from repro.obs.store import RunStore, summarize_point

KiB, MiB = 1024, 1024 * 1024


# -- guideline checks on synthetic times --------------------------------------------


def test_guidelines_pass_on_consistent_times():
    times = {
        ("bcast", 64 * KiB): 1e-4, ("bcast", 1 * MiB): 1e-3,
        ("reduce", 64 * KiB): 2e-4, ("reduce", 1 * MiB): 2e-3,
        ("allreduce", 64 * KiB): 2.5e-4, ("allreduce", 1 * MiB): 2.5e-3,
        ("scatter", 64 * KiB): 1e-4, ("scatter", 1 * MiB): 1e-3,
        ("allgather", 64 * KiB): 3e-4, ("allgather", 1 * MiB): 3e-3,
    }
    checks = ins.guideline_insights(times)
    assert checks and all(i.passed for i in checks)


def test_guideline_flags_allreduce_worse_than_composition():
    times = {
        ("bcast", 1 * MiB): 1e-3,
        ("reduce", 1 * MiB): 1e-3,
        ("allreduce", 1 * MiB): 5e-3,  # worse than reduce+bcast
    }
    checks = ins.guideline_insights(times)
    bad = [i for i in checks if not i.passed]
    assert len(bad) == 1
    assert bad[0].kind == "guideline"
    assert "allreduce" in bad[0].name
    # 2.5x the bound: an error-grade violation costing 3ms of wall time
    assert bad[0].grade == "error"
    assert bad[0].cost_seconds == pytest.approx(3e-3)
    assert bad[0].cost_bytes > 0


def test_passing_insights_carry_no_cost():
    times = {("bcast", 64 * KiB): 1e-4, ("bcast", 1 * MiB): 1e-3}
    for check in ins.guideline_insights(times):
        assert check.grade == "ok"
        assert check.cost_seconds == 0.0 and check.cost_bytes == 0.0


def test_guideline_flags_non_monotone_sizes():
    times = {("bcast", 64 * KiB): 2e-3, ("bcast", 1 * MiB): 1e-3}
    checks = ins.guideline_insights(times)
    bad = [i for i in checks if not i.passed]
    assert [i.name for i in bad] == ["bcast monotone in nbytes"]


def test_margin_enforced_for_bcast_only():
    han = {("bcast", 1 * MiB): 2e-3, ("allreduce", 1 * MiB): 2e-3}
    rivals = {
        ("bcast", 1 * MiB): {"openmpi": 1e-3},
        ("allreduce", 1 * MiB): {"openmpi": 1e-3},
    }
    checks = ins.margin_insights(han, rivals)
    by_name = {i.name: i for i in checks}
    bcast = by_name["han bcast vs rivals @1M"]
    allred = by_name["han allreduce vs rivals @1M"]
    assert not bcast.passed and bcast.severity == "fail"
    assert allred.passed and allred.severity == "info"


# -- regression bands ---------------------------------------------------------------


def _seed_group(store, time_s, n=1, **kw):
    m = shaheen2(num_nodes=2, ppn=2)
    for t in ([time_s] * n if isinstance(time_s, float) else time_s):
        store.append(summarize_point(m, "bcast", 64 * KiB, t, **kw))


def test_regress_self_vs_self_is_clean(tmp_path):
    store = RunStore(tmp_path)
    _seed_group(store, 1e-3, n=2)
    checks = ins.check_regressions(store)
    assert len(checks) == 1
    assert checks[0].passed


def test_regress_flags_slowdown_beyond_band(tmp_path):
    store = RunStore(tmp_path)
    _seed_group(store, [1e-3, 1.001e-3, 0.999e-3, 2e-3])
    checks = ins.check_regressions(store)
    assert len(checks) == 1
    assert not checks[0].passed
    assert checks[0].kind == "regression"
    # a 2x slowdown is an error-grade regression costing ~1ms per run
    assert checks[0].grade == "error"
    assert checks[0].cost_seconds == pytest.approx(1e-3, rel=0.1)


def test_regress_tolerates_band_width(tmp_path):
    store = RunStore(tmp_path)
    # last run within max(k*MAD, rel_floor*median) of the median
    _seed_group(store, [1e-3, 1e-3, 1.01e-3])
    checks = ins.check_regressions(store)
    assert checks[0].passed


def test_regress_skips_single_run_groups(tmp_path):
    store = RunStore(tmp_path)
    _seed_group(store, 1e-3, n=1)
    assert ins.check_regressions(store) == []


def test_mad_band_floor():
    center, tol = ins.mad_band([1.0, 1.0, 1.0])
    assert center == 1.0
    assert tol == pytest.approx(ins.REGRESS_REL_FLOOR)


# -- straggler integration (the acceptance check) -----------------------------------


def _tiny_workload(fault_plan=None):
    # rival margins only make sense on the clean platform: a fault plan
    # perturbs HAN and the rival sweep differently (they run different
    # cpu-job mixes), so the faulted workload checks HAN-only relations
    rivals = ("openmpi",) if fault_plan is None else ()
    return ins.quick_workload(
        machine=shaheen2(num_nodes=2, ppn=4),
        colls=("bcast", "reduce", "allreduce"),
        sizes=(64 * KiB, 1 * MiB),
        config=HanConfig(fs=512 * KiB),
        rivals=rivals,
        fault_plan=fault_plan,
    )


def test_clean_run_passes_all_insights():
    checks = ins.run_insights(_tiny_workload())
    assert checks
    assert all(i.passed for i in checks), ins.format_insights(checks)
    strag = [i for i in checks if i.kind == "straggler"]
    assert len(strag) == 1 and strag[0].severity == "pass"
    assert strag[0].data["cpu_skew"] < 1.5


def test_rank_slowdown_trips_exactly_the_straggler_insight():
    plan = FaultPlan(injectors=(RankSlowdown(rank=3, factor=4.0),))
    checks = ins.run_insights(_tiny_workload(fault_plan=plan))
    failed = [i for i in checks if not i.passed]
    assert len(failed) == 1, ins.format_insights(checks)
    assert failed[0].kind == "straggler"
    # the cpu-skew gauge recovers the injected factor
    assert failed[0].data["cpu_skew"] == pytest.approx(4.0, rel=0.1)


def test_workload_appends_to_store(tmp_path):
    store = RunStore(tmp_path)
    w = ins.quick_workload(
        machine=shaheen2(num_nodes=2, ppn=2),
        colls=("bcast",), sizes=(64 * KiB,), rivals=(), store=store,
    )
    assert len(store) == 1
    (key,) = store.keys()
    doc = store.latest(key)
    assert doc["source"] == "obs.insights"
    assert doc["time"] == w["han_times"][("bcast", 64 * KiB)]
    assert doc["metrics"]  # the metrics registry rode along
