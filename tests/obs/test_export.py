"""Exporter acceptance: Chrome trace schema, JSONL round trip, timelines.

The headline case from the issue: the exported Chrome trace for a
two-node HAN bcast must be schema-valid JSON with per-rank tracks,
per-resource tracks, and ib/sb phase spans.
"""

import json

import pytest

from repro.hardware.machines import small_cluster
from repro.obs import (
    chrome_trace,
    load_jsonl,
    record_collective,
    resource_timeline,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


@pytest.fixture(scope="module")
def bcast_record():
    return record_collective(small_cluster(num_nodes=2, ppn=4), "bcast", 1 << 20)


def test_chrome_trace_is_schema_valid(bcast_record, tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(bcast_record, str(path))
    doc = json.loads(path.read_text())  # valid JSON on disk
    assert validate_chrome_trace(doc) is None
    assert doc["traceEvents"]


def test_chrome_trace_has_per_rank_and_per_resource_tracks(bcast_record):
    doc = chrome_trace(bcast_record)
    thread_names = {
        ev["args"]["name"]
        for ev in doc["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "thread_name"
    }
    for r in range(8):
        assert f"rank{r}" in thread_names  # collective/phase/p2p tracks
        assert f"cpu:rank{r}" in thread_names  # progress-server tracks
    assert any(t.startswith("res:nic_tx") for t in thread_names)
    assert any(t.startswith("res:membus") for t in thread_names)


def test_chrome_trace_contains_ib_and_sb_phase_spans(bcast_record):
    doc = chrome_trace(bcast_record)
    phase_names = {
        ev["name"]
        for ev in doc["traceEvents"]
        if ev.get("cat") == "phase" and ev["ph"] == "b"
    }
    assert {"ib", "sb"} <= phase_names


def test_chrome_trace_cpu_spans_are_complete_events(bcast_record):
    doc = chrome_trace(bcast_record)
    xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
    assert xs and all(ev["cat"] == "cpu" for ev in xs)
    assert all(ev["dur"] >= 0 and ev["ts"] >= 0 for ev in xs)


def test_chrome_trace_async_pairs_share_track(bcast_record):
    doc = chrome_trace(bcast_record)
    begins = {
        (ev["cat"], ev["id"]): (ev["pid"], ev["tid"], ev["ts"])
        for ev in doc["traceEvents"] if ev["ph"] == "b"
    }
    ends = [ev for ev in doc["traceEvents"] if ev["ph"] == "e"]
    assert len(ends) == len(begins)
    for ev in ends:
        pid, tid, ts = begins[(ev["cat"], ev["id"])]
        assert (ev["pid"], ev["tid"]) == (pid, tid)
        assert ev["ts"] >= ts


def test_jsonl_round_trip(bcast_record, tmp_path):
    path = tmp_path / "run.jsonl"
    write_jsonl(bcast_record, str(path))
    back = load_jsonl(str(path))
    assert back.meta == bcast_record.meta
    assert len(back.spans) == len(bcast_record.spans)
    assert len(back.messages) == len(bcast_record.messages)
    assert len(back.counters) == len(bcast_record.counters)
    assert back.resources == bcast_record.resources
    s0, s1 = bcast_record.spans[0], back.spans[0]
    assert (s0.track, s0.name, s0.t0, s0.t1, s0.args) == (
        s1.track, s1.name, s1.t0, s1.t1, s1.args,
    )


def test_resource_timeline_matches_solver_accounting(bcast_record):
    timeline = resource_timeline(bcast_record)
    by_name = {r["name"]: r for r in timeline}
    # a 1 MB inter-node bcast must cross node 0's NIC
    nic = by_name["nic_tx:n0"]
    assert nic["busy_time"] > 0
    assert nic["served_bytes"] == pytest.approx(1 << 20, rel=1e-6)
    assert 0 < nic["mean_utilization"] <= 1.0
    # utilization counter samples exist for busy resources
    assert nic["samples"], "expected sampled utilization points"
    ts = [t for t, _v in nic["samples"]]
    assert ts == sorted(ts)


def test_message_records_cover_inter_node_traffic(bcast_record):
    msgs = bcast_record.messages
    assert msgs
    inter = [m for m in msgs if (m.src < 4) != (m.dst < 4)]
    assert inter, "2-node bcast must send inter-node messages"
    for m in msgs:
        assert m.t_send <= m.t_send_done <= m.t_arrive
        assert m.t_arrive <= m.t_recv_done


def test_chrome_trace_renders_metric_counter_tracks(bcast_record):
    doc = chrome_trace(bcast_record)
    assert validate_chrome_trace(doc) is None
    metric_events = [
        e for e in doc["traceEvents"]
        if e.get("name", "").startswith("metric:")
    ]
    assert metric_events, "metrics registry should render as counter tracks"
    assert all(e["ph"] == "C" for e in metric_events)
    pids = {e["pid"] for e in metric_events}
    assert len(pids) == 1  # all under the synthetic "metrics" process
    names = {e["name"] for e in metric_events}
    assert any(n.startswith("metric:mpi.bytes_sent{") for n in names)
    # histogram tracks carry one series per bucket plus the overflow
    (hist_ev,) = [
        e for e in metric_events if e["name"] == "metric:mpi.message_bytes"
    ]
    assert "le_inf" in hist_ev["args"]
    assert any(k.startswith("le_") and k != "le_inf" for k in hist_ev["args"])


def test_jsonl_round_trips_metrics(bcast_record, tmp_path):
    path = tmp_path / "run.jsonl"
    write_jsonl(bcast_record, str(path))
    back = load_jsonl(str(path))
    assert back.metrics == bcast_record.metrics
    assert back.metrics_registry().counter(
        "mpi.bytes_sent", rank=0
    ).value == bcast_record.metrics_registry().counter(
        "mpi.bytes_sent", rank=0
    ).value
