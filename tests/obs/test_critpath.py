"""Critical-path acceptance: serial coverage, overlap consistency, diff.

Issue criteria: on a purely serial schedule the path attributes 100% of
simulated time; on the fig06-style ib/sb overlap scenario the reported
concurrency is consistent with the recorded spans.
"""

import pytest

from repro.hardware.machines import small_cluster
from repro.mpi.runtime import MPIRuntime
from repro.obs import (
    ObsRecorder,
    critical_path,
    diff_runs,
    phase_overlap,
    phase_totals,
    record_collective,
)
from repro.obs.core import RunRecord, Span


def observed_p2p_run(nbytes=1 << 16):
    """One blocking send/recv pair between two nodes: fully serial."""
    machine = small_cluster(num_nodes=2, ppn=1)
    runtime = MPIRuntime(machine)

    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=nbytes)
        else:
            yield from comm.recv(0)

    rec = ObsRecorder(runtime.engine)
    with rec:
        runtime.run(prog)
        rec.snapshot_resources(runtime.fabric.solver)
    return rec.run_record(meta={"what": "p2p"})


def test_serial_schedule_attributes_100_percent():
    record = observed_p2p_run()
    path = critical_path(record)
    att = path.attribution
    assert att["coverage"] == pytest.approx(1.0)
    # the path must end when the receive-side overhead retires
    assert att["end"] == pytest.approx(record.sim_time, rel=1e-9)
    # a single message: sender cpu, wire, receiver cpu all on the path
    kinds = {s.kind for s in path.segments}
    assert "cpu" in kinds and "net" in kinds
    assert att["cpu"] > 0 and att["net"] > 0
    # segments tile [0, end] with no gaps or overlaps
    t = 0.0
    for seg in path.segments:
        assert seg.t0 == pytest.approx(t, abs=1e-15)
        t = seg.t1
    assert t == pytest.approx(att["end"])


def test_serial_path_walks_through_the_message():
    record = observed_p2p_run()
    path = critical_path(record)
    names = [s.label for s in path.segments if s.kind == "cpu"]
    assert "send_ov" in names and "recv_ov" in names
    net = [s for s in path.segments if s.kind == "net"]
    assert len(net) == 1
    (m,) = [m for m in record.messages if m.nbytes == 1 << 16]
    assert net[0].t0 == pytest.approx(m.t_send_done)
    assert net[0].t1 == pytest.approx(m.t_arrive)


def test_critical_path_on_empty_record():
    rr = RunRecord(meta={"sim_time": 2.0}, spans=[], messages=[],
                   counters=[], resources=[])
    path = critical_path(rr)
    assert path.attribution["wait"] == pytest.approx(2.0)


@pytest.fixture(scope="module")
def bcast_record():
    # two nodes, large message: HAN pipelines ib against sb (fig06 overlap)
    return record_collective(
        small_cluster(num_nodes=2, ppn=4), "bcast", 4 << 20
    )


def test_overlap_consistent_with_recorded_spans(bcast_record):
    totals = phase_totals(bcast_record)
    assert totals["ib"]["count"] > 0 and totals["sb"]["count"] > 0
    ov = phase_overlap(bcast_record, "ib", "sb")
    # overlap is bounded by each phase's union occupancy...
    assert 0 < ov <= min(totals["ib"]["union"], totals["sb"]["union"]) + 1e-15
    # ...and the sbib pipeline genuinely overlaps: the shared wall-clock
    # is a significant fraction of the shorter phase
    assert ov > 0.25 * min(totals["ib"]["union"], totals["sb"]["union"])


def test_phase_union_not_exceeding_sim_time(bcast_record):
    totals = phase_totals(bcast_record)
    for name, d in totals.items():
        assert d["union"] <= bcast_record.sim_time + 1e-12, name
        assert d["total"] >= d["union"] - 1e-15  # total counts per-rank copies


def test_critical_path_covers_anchor_on_overlapped_run(bcast_record):
    path = critical_path(bcast_record)
    att = path.attribution
    assert att["coverage"] == pytest.approx(1.0)
    assert att["cpu"] + att["net"] + att["wait"] == pytest.approx(att["end"])


def test_phase_overlap_synthetic():
    spans = [
        Span(0, "rank0", "ib", "phase", 0.0, 3.0),
        Span(1, "rank0", "sb", "phase", 2.0, 5.0),
        Span(2, "rank1", "sb", "phase", 2.5, 2.8),  # inside the other sb
    ]
    rr = RunRecord(meta={"sim_time": 5.0}, spans=spans, messages=[],
                   counters=[], resources=[])
    assert phase_overlap(rr, "ib", "sb") == pytest.approx(1.0)  # [2, 3]
    totals = phase_totals(rr)
    assert totals["sb"]["union"] == pytest.approx(3.0)
    assert totals["sb"]["total"] == pytest.approx(3.3)


def test_diff_runs_reports_deltas():
    a = record_collective(small_cluster(num_nodes=2, ppn=2), "bcast", 1 << 18)
    b = record_collective(small_cluster(num_nodes=2, ppn=2), "bcast", 1 << 20)
    d = diff_runs(a, b)
    assert d["sim_time"]["delta"] == pytest.approx(
        b.sim_time - a.sim_time
    )
    assert d["sim_time"]["b"] > d["sim_time"]["a"]  # 4x the bytes is slower
    assert d["messages"]["a"] == len(a.messages)
    assert "sb" in d["phases"]
    assert any(name.startswith("nic") for name in d["resources"])
    for kind in ("cpu", "net", "wait"):
        assert kind in d["critical_path"]


def test_diff_runs_identical_is_all_zero():
    a = record_collective(small_cluster(num_nodes=2, ppn=2), "bcast", 1 << 18)
    b = record_collective(small_cluster(num_nodes=2, ppn=2), "bcast", 1 << 18)
    d = diff_runs(a, b)
    assert d["sim_time"]["delta"] == 0.0
    assert d["messages"]["delta"] == 0 and d["spans"]["delta"] == 0
    for e in d["phases"].values():
        assert e["delta"] == 0.0
