"""Run store: key contract, append/read round-trip, torn-line tolerance."""

import json
from pathlib import Path

from repro.core.config import HanConfig
from repro.hardware.machines import shaheen2
from repro.obs.store import (
    RunStore,
    config_digest,
    run_key,
    summarize_measurement,
    summarize_point,
)
from repro.tuning.measure import measure_collective

KiB = 1024


def _machine():
    return shaheen2(num_nodes=2, ppn=2)


def test_run_key_ignores_seed_and_time():
    m = _machine()
    a = run_key(m, "bcast", 64 * KiB, HanConfig(fs=64 * KiB, seed=0))
    b = run_key(m, "bcast", 64 * KiB, HanConfig(fs=64 * KiB, seed=99))
    assert a == b  # seed is not part of the tuning identity
    assert a != run_key(m, "bcast", 128 * KiB, HanConfig(fs=64 * KiB))
    assert a != run_key(m, "reduce", 64 * KiB, HanConfig(fs=64 * KiB))
    assert a != run_key(m, "bcast", 64 * KiB, HanConfig(fs=128 * KiB))
    assert a != run_key(m, "bcast", 64 * KiB, HanConfig(fs=64 * KiB),
                        library="openmpi")
    assert a != run_key(m, "bcast", 64 * KiB, HanConfig(fs=64 * KiB),
                        extra={"plan": "noisy"})


def test_config_digest_stable_across_seeds():
    assert config_digest(HanConfig(fs=1, seed=0)) == \
        config_digest(HanConfig(fs=1, seed=7))
    assert config_digest(HanConfig(fs=1)) != config_digest(HanConfig(fs=2))
    assert config_digest(None) != config_digest(HanConfig(fs=1))


def test_store_append_read_round_trip(tmp_path):
    store = RunStore(tmp_path / "store")
    m = _machine()
    cfg = HanConfig(fs=64 * KiB)
    meas = measure_collective(m, "bcast", 64 * KiB, cfg)
    key = store.append(summarize_measurement(m, meas))
    store.append(summarize_measurement(m, meas))
    assert store.keys() == [key]
    runs = store.runs(key)
    assert len(runs) == 2 and len(store) == 2
    for doc in runs:
        assert doc["coll"] == "bcast"
        assert doc["time"] == meas.time
        assert doc["per_rank"] == list(meas.per_rank)
        assert doc["config_digest"] == config_digest(cfg)
        assert doc["source"] == "measure_collective"
        assert not doc["faulted"]
    assert store.latest(key) == runs[-1]


def test_store_rejects_keyless_docs(tmp_path):
    import pytest

    store = RunStore(tmp_path)
    with pytest.raises(ValueError):
        store.append({"coll": "bcast"})


def test_store_skips_torn_lines(tmp_path):
    store = RunStore(tmp_path)
    m = _machine()
    key = store.append(summarize_point(m, "bcast", 1024, 1e-4))
    f = store._open_file(key)
    with open(f, "a") as fh:
        fh.write('{"truncated": ')  # dead writer mid-line
    assert len(store.runs(key)) == 1


def test_measure_collective_appends_on_cache_hit(tmp_path):
    from repro.tuning.cache import MeasurementCache

    store = RunStore(tmp_path / "store")
    cache = MeasurementCache()
    m = _machine()
    cfg = HanConfig(fs=64 * KiB)
    a = measure_collective(m, "bcast", 64 * KiB, cfg, cache=cache,
                           store=store)
    b = measure_collective(m, "bcast", 64 * KiB, cfg, cache=cache,
                           store=store)
    assert a == b
    assert cache.stats()["hits"] == 1
    # both the fresh measurement and the replay entered the history
    (key,) = store.keys()
    assert len(store.runs(key)) == 2


def test_store_lines_are_valid_json(tmp_path):
    store = RunStore(tmp_path)
    m = _machine()
    key = store.append(summarize_point(m, "allreduce", 2048, 2e-4,
                                       library="openmpi"))
    f = store._open_file(key)
    lines = f.read_text().splitlines()
    assert len(lines) == 1
    doc = json.loads(lines[0])
    assert doc["library"] == "openmpi"
    assert doc["schema_version"] == 1


# -- fleet-scale layout: shards, segments, compaction, tail -------------------


def _point(machine, coll, nbytes, time_s, wall):
    """A run summary with a pinned wall_time, for deterministic order."""
    doc = summarize_point(machine, coll, nbytes, time_s)
    doc["wall_time"] = float(wall)
    return doc


def _docs(machine, n=6):
    out = []
    for i in range(n):
        out.append(_point(machine, "bcast", 1024, 1e-3 + 1e-6 * i, wall=i))
        out.append(_point(machine, "allreduce", 2048, 2e-3 + 1e-6 * i,
                          wall=i))
    return out


def _segment_bytes(root):
    """{relative segment path: bytes} of every segment under a store."""
    root = Path(root)
    return {str(p.relative_to(root)): p.read_bytes()
            for p in root.glob("*/seg-*.jsonl")}


def test_compact_is_order_independent_and_byte_identical(tmp_path):
    m = _machine()
    docs = _docs(m)
    a = RunStore(tmp_path / "a")
    b = RunStore(tmp_path / "b")
    for doc in docs:
        a.append(doc)
    for doc in reversed(docs):
        b.append(doc)
        b.append(doc)  # exact duplicates must fold away
    a.compact()
    b.compact()
    segs_a, segs_b = _segment_bytes(a.root), _segment_bytes(b.root)
    assert segs_a and segs_a == segs_b
    for key in a.keys():
        assert a.runs(key) == b.runs(key)


def test_compact_preserves_history_and_is_idempotent(tmp_path):
    m = _machine()
    store = RunStore(tmp_path)
    for doc in _docs(m):
        store.append(doc)
    before = {key: runs for key, runs in store.groups()}
    res = store.compact()
    assert res["records"] == len(store) == sum(map(len, before.values()))
    assert {key: runs for key, runs in store.groups()} == before
    for key in before:
        assert store.latest(key) == before[key][-1]
    segs = _segment_bytes(store.root)
    store.compact()  # re-compacting an already-compact store is a no-op
    assert _segment_bytes(store.root) == segs


def test_compact_folds_later_appends_into_one_segment(tmp_path):
    m = _machine()
    store = RunStore(tmp_path)
    store.append(_point(m, "bcast", 1024, 1e-3, wall=0))
    store.compact()
    store.append(_point(m, "bcast", 1024, 1.1e-3, wall=1))
    store.compact()
    (key,) = store.keys()
    shard = store._shard_dir(key)
    assert len(store._segments(shard)) == 1
    assert store._mutable_files(shard) == []
    assert len(store.runs(key)) == 2


def test_concurrent_appends_during_compact_lose_nothing(tmp_path):
    import threading

    m = _machine()
    docs = [_point(m, "bcast", 1024, 1e-3 + 1e-6 * i, wall=i)
            for i in range(120)]

    def writer(chunk):
        store = RunStore(tmp_path)  # own handle, own fds
        for doc in chunk:
            store.append(doc)

    threads = [threading.Thread(target=writer, args=(docs[i::3],))
               for i in range(3)]
    for t in threads:
        t.start()
    compactor = RunStore(tmp_path)
    for _ in range(8):
        compactor.compact()
    for t in threads:
        t.join()
    compactor.compact()
    store = RunStore(tmp_path)
    (key,) = store.keys()
    got = store.runs(key)
    assert len(got) == len(docs)
    assert sorted(d["wall_time"] for d in got) == \
        [d["wall_time"] for d in docs]


def test_segment_index_sidecars(tmp_path):
    m = _machine()
    store = RunStore(tmp_path)
    for doc in _docs(m):
        store.append(doc)
    store.compact()
    segs = list(store.root.glob("*/seg-*.jsonl"))
    assert segs
    for seg in segs:
        idx = json.loads(seg.with_suffix(".idx.json").read_text())
        assert idx["records"] == sum(map(len, idx["keys"].values()))
    # a lost sidecar is rebuilt transparently by a fresh handle
    expect = {key: runs for key, runs in store.groups()}
    for seg in segs:
        seg.with_suffix(".idx.json").unlink()
    fresh = RunStore(tmp_path)
    assert {key: runs for key, runs in fresh.groups()} == expect
    assert all(seg.with_suffix(".idx.json").exists() for seg in segs)


def test_legacy_per_group_layout_reads_and_compacts(tmp_path):
    m = _machine()
    doc = _point(m, "bcast", 1024, 1e-3, wall=0)
    key = doc["key"]
    legacy_dir = tmp_path / key[:2]
    legacy_dir.mkdir(parents=True)
    legacy = legacy_dir / f"{key}.jsonl"
    legacy.write_text(json.dumps(doc, sort_keys=True) + "\n")
    store = RunStore(tmp_path)
    assert store.keys() == [key]
    assert store.runs(key) == [doc]
    assert store.latest(key) == doc
    store.append(_point(m, "bcast", 1024, 1.1e-3, wall=1))
    store.compact()
    assert not legacy.exists()
    assert len(store.runs(key)) == 2


def test_runs_are_in_wall_time_order_across_files(tmp_path):
    m = _machine()
    store = RunStore(tmp_path)
    store.append(_point(m, "bcast", 1024, 3e-3, wall=2))
    store.compact()
    store.append(_point(m, "bcast", 1024, 1e-3, wall=0))  # back-dated
    store.append(_point(m, "bcast", 1024, 2e-3, wall=1))
    (key,) = store.keys()
    assert [d["wall_time"] for d in store.runs(key)] == [0.0, 1.0, 2.0]
    assert store.latest(key)["wall_time"] == 2.0


def test_tail_cursor_sees_each_record_once(tmp_path):
    m = _machine()
    store = RunStore(tmp_path)
    for i in range(3):
        store.append(_point(m, "bcast", 1024, 1e-3, wall=i))
    records, cur = store.tail()
    assert [d["wall_time"] for d in records] == [0.0, 1.0, 2.0]
    records, cur = store.tail(cur)
    assert records == []  # nothing new
    store.append(_point(m, "bcast", 1024, 1e-3, wall=3))
    store.append(_point(m, "allreduce", 2048, 2e-3, wall=4))
    records, cur = store.tail(cur)
    assert [d["wall_time"] for d in records] == [3.0, 4.0]
    store.compact()
    records, cur = store.tail(cur)
    assert records == []  # compaction moved bytes, not records
    store.append(_point(m, "bcast", 1024, 1e-3, wall=5))
    records, cur = store.tail(cur)
    assert [d["wall_time"] for d in records] == [5.0]


def test_tail_cursor_is_json_serializable(tmp_path):
    m = _machine()
    store = RunStore(tmp_path)
    store.append(_point(m, "bcast", 1024, 1e-3, wall=0))
    _records, cur = store.tail()
    revived = json.loads(json.dumps(cur))
    store.append(_point(m, "bcast", 1024, 1e-3, wall=1))
    records, _cur = store.tail(revived)
    assert [d["wall_time"] for d in records] == [1.0]


def test_merge_from_is_idempotent_union(tmp_path):
    m = _machine()
    a = RunStore(tmp_path / "a")
    b = RunStore(tmp_path / "b")
    docs = _docs(m, n=3)
    for doc in docs[: len(docs) // 2]:
        a.append(doc)
    for doc in docs:
        b.append(doc)
    a.merge_from(b)
    a.merge_from(b)  # duplicates collapse on read
    a.compact()
    b.compact()
    assert {k: r for k, r in a.groups()} == {k: r for k, r in b.groups()}
