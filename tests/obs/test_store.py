"""Run store: key contract, append/read round-trip, torn-line tolerance."""

import json

from repro.core.config import HanConfig
from repro.hardware.machines import shaheen2
from repro.obs.store import (
    RunStore,
    config_digest,
    run_key,
    summarize_measurement,
    summarize_point,
)
from repro.tuning.measure import measure_collective

KiB = 1024


def _machine():
    return shaheen2(num_nodes=2, ppn=2)


def test_run_key_ignores_seed_and_time():
    m = _machine()
    a = run_key(m, "bcast", 64 * KiB, HanConfig(fs=64 * KiB, seed=0))
    b = run_key(m, "bcast", 64 * KiB, HanConfig(fs=64 * KiB, seed=99))
    assert a == b  # seed is not part of the tuning identity
    assert a != run_key(m, "bcast", 128 * KiB, HanConfig(fs=64 * KiB))
    assert a != run_key(m, "reduce", 64 * KiB, HanConfig(fs=64 * KiB))
    assert a != run_key(m, "bcast", 64 * KiB, HanConfig(fs=128 * KiB))
    assert a != run_key(m, "bcast", 64 * KiB, HanConfig(fs=64 * KiB),
                        library="openmpi")
    assert a != run_key(m, "bcast", 64 * KiB, HanConfig(fs=64 * KiB),
                        extra={"plan": "noisy"})


def test_config_digest_stable_across_seeds():
    assert config_digest(HanConfig(fs=1, seed=0)) == \
        config_digest(HanConfig(fs=1, seed=7))
    assert config_digest(HanConfig(fs=1)) != config_digest(HanConfig(fs=2))
    assert config_digest(None) != config_digest(HanConfig(fs=1))


def test_store_append_read_round_trip(tmp_path):
    store = RunStore(tmp_path / "store")
    m = _machine()
    cfg = HanConfig(fs=64 * KiB)
    meas = measure_collective(m, "bcast", 64 * KiB, cfg)
    key = store.append(summarize_measurement(m, meas))
    store.append(summarize_measurement(m, meas))
    assert store.keys() == [key]
    runs = store.runs(key)
    assert len(runs) == 2 and len(store) == 2
    for doc in runs:
        assert doc["coll"] == "bcast"
        assert doc["time"] == meas.time
        assert doc["per_rank"] == list(meas.per_rank)
        assert doc["config_digest"] == config_digest(cfg)
        assert doc["source"] == "measure_collective"
        assert not doc["faulted"]
    assert store.latest(key) == runs[-1]


def test_store_rejects_keyless_docs(tmp_path):
    import pytest

    store = RunStore(tmp_path)
    with pytest.raises(ValueError):
        store.append({"coll": "bcast"})


def test_store_skips_torn_lines(tmp_path):
    store = RunStore(tmp_path)
    m = _machine()
    key = store.append(summarize_point(m, "bcast", 1024, 1e-4))
    f = store._file_for(key)
    with open(f, "a") as fh:
        fh.write('{"truncated": ')  # dead writer mid-line
    assert len(store.runs(key)) == 1


def test_measure_collective_appends_on_cache_hit(tmp_path):
    from repro.tuning.cache import MeasurementCache

    store = RunStore(tmp_path / "store")
    cache = MeasurementCache()
    m = _machine()
    cfg = HanConfig(fs=64 * KiB)
    a = measure_collective(m, "bcast", 64 * KiB, cfg, cache=cache,
                           store=store)
    b = measure_collective(m, "bcast", 64 * KiB, cfg, cache=cache,
                           store=store)
    assert a == b
    assert cache.stats()["hits"] == 1
    # both the fresh measurement and the replay entered the history
    (key,) = store.keys()
    assert len(store.runs(key)) == 2


def test_store_lines_are_valid_json(tmp_path):
    store = RunStore(tmp_path)
    m = _machine()
    key = store.append(summarize_point(m, "allreduce", 2048, 2e-4,
                                       library="openmpi"))
    f = store._file_for(key)
    lines = f.read_text().splitlines()
    assert len(lines) == 1
    doc = json.loads(lines[0])
    assert doc["library"] == "openmpi"
    assert doc["schema_version"] == 1
