"""Metrics registry: bucketing, exemplars, merge, serialization."""

import pytest

from repro.obs.metrics import (
    BYTE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TIME_BUCKETS,
    merge_registries,
)


def test_counter_monotonic():
    c = Counter("x")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_tracks_max():
    g = Gauge("u")
    g.set(0.4)
    g.set(0.9)
    g.set(0.2)
    assert g.value == 0.2
    assert g.max_value == 0.9


def test_histogram_bucketing_inclusive_upper_bounds():
    h = Histogram("d", bounds=(1.0, 10.0, 100.0))
    # inclusive upper bounds: a value exactly on a bound lands in it
    for v, bucket in ((0.5, 0), (1.0, 0), (1.5, 1), (10.0, 1),
                      (99.0, 2), (100.0, 2), (101.0, 3)):
        before = h.counts[bucket]
        h.observe(v)
        assert h.counts[bucket] == before + 1, (v, bucket)
    assert h.count == 7
    assert h.sum == pytest.approx(0.5 + 1 + 1.5 + 10 + 99 + 100 + 101)


def test_histogram_exemplars_keep_latest_span():
    h = Histogram("d", bounds=(1.0,))
    h.observe(0.5, exemplar=7)
    h.observe(0.6, exemplar=9)
    h.observe(2.0)  # no exemplar for overflow
    assert h.exemplars == [9, -1]


def test_histogram_quantile_bucket_resolution():
    h = Histogram("d", bounds=(1.0, 10.0, 100.0))
    for _ in range(98):
        h.observe(0.5)
    h.observe(50.0)
    h.observe(5000.0)
    assert h.quantile(0.5) == 1.0
    assert h.quantile(0.98) == 1.0
    assert h.quantile(0.99) == 100.0
    assert h.quantile(1.0) == float("inf")


def test_histogram_quantile_empty():
    assert Histogram("d").quantile(0.5) == 0.0


def test_histogram_merge():
    a = Histogram("d", bounds=(1.0, 10.0))
    b = Histogram("d", bounds=(1.0, 10.0))
    a.observe(0.5, exemplar=1)
    b.observe(0.7, exemplar=2)
    b.observe(20.0, exemplar=3)
    a.merge(b)
    assert a.counts == [2, 0, 1]
    assert a.exemplars == [2, -1, 3]  # merged-in exemplars win
    assert a.sum == pytest.approx(21.2)


def test_histogram_merge_rejects_mismatched_bounds():
    a = Histogram("d", bounds=(1.0,))
    b = Histogram("d", bounds=(2.0,))
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("d", bounds=(2.0, 1.0))


def test_registry_get_or_create_by_name_and_labels():
    reg = MetricsRegistry()
    assert reg.counter("n", rank=1) is reg.counter("n", rank=1)
    assert reg.counter("n", rank=1) is not reg.counter("n", rank=2)
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")
    assert len(reg) == 4


def test_registry_label_order_is_canonical():
    reg = MetricsRegistry()
    assert reg.counter("n", a=1, b=2) is reg.counter("n", b=2, a=1)


def test_registry_doc_round_trip():
    reg = MetricsRegistry()
    reg.counter("mpi.bytes_sent", rank=0).inc(1024)
    reg.gauge("resource.mean_utilization", res="nic0").set(0.75)
    h = reg.histogram("net.flow_bytes", BYTE_BUCKETS)
    h.observe(128.0, exemplar=4)
    doc = reg.to_doc()
    back = MetricsRegistry.from_doc(doc)
    assert back.to_doc() == doc
    assert back.counter("mpi.bytes_sent", rank=0).value == 1024
    assert back.histogram("net.flow_bytes").bounds == BYTE_BUCKETS
    assert back.histogram("net.flow_bytes").exemplars[1] == 4


def test_merge_registries_folds_counters_and_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("jobs", rank=0).inc(2)
    b.counter("jobs", rank=0).inc(3)
    b.counter("jobs", rank=1).inc(1)
    a.histogram("wait", TIME_BUCKETS).observe(1e-3)
    b.histogram("wait", TIME_BUCKETS).observe(1e-3)
    a.gauge("skew").set(1.5)
    b.gauge("skew").set(1.2)
    out = merge_registries([a, b])
    assert out.counter("jobs", rank=0).value == 5
    assert out.counter("jobs", rank=1).value == 1
    assert out.histogram("wait").count == 2
    assert out.gauge("skew").value == 1.2  # last write
    assert out.gauge("skew").max_value == 1.5  # running max survives
