"""Recorder mechanics: spans, counters, messages, attach/detach, limits."""

import pytest

from repro.obs import ObsRecorder
from repro.sim import Engine, Sleep


def test_begin_end_span_times():
    eng = Engine()
    rec = ObsRecorder(eng)

    def prog():
        sid = rec.begin("t", "work", "phase", seg=3)
        yield Sleep(2.0)
        rec.end(sid, extra=1)

    with rec:
        eng.spawn(prog(), name="p")
        eng.run()
    (sp,) = rec.spans
    assert (sp.t0, sp.t1, sp.name, sp.cat) == (0.0, 2.0, "work", "phase")
    assert sp.args == {"seg": 3, "extra": 1}
    assert sp.dur == 2.0 and not sp.open


def test_attach_detach_restores_previous():
    eng = Engine()
    outer = ObsRecorder(eng)
    inner = ObsRecorder(eng)
    outer.attach()
    inner.attach()
    assert eng.obs is inner
    inner.detach()
    assert eng.obs is outer
    outer.detach()
    assert eng.obs is None


def test_context_manager():
    eng = Engine()
    with ObsRecorder(eng) as rec:
        assert eng.obs is rec
    assert eng.obs is None


def test_open_spans_excluded_from_run_record():
    eng = Engine()
    rec = ObsRecorder(eng)
    with rec:
        sid = rec.begin("t", "never-closed")
        done = rec.begin("t", "closed")
        rec.end(done)
    record = rec.run_record()
    assert [s.name for s in record.spans] == ["closed"]
    assert sid not in {s.sid for s in record.spans}


def test_limit_drops_and_counts():
    eng = Engine()
    rec = ObsRecorder(eng, limit=2)
    with rec:
        assert rec.begin("t", "a") >= 0
        assert rec.begin("t", "b") >= 0
        assert rec.begin("t", "c") == -1  # over the cap
        assert rec.complete("t", "d", 0.0, 1.0) == -1
    assert rec.dropped == 2
    assert rec.run_record().meta["dropped"] == 2


def test_counter_dedupes_identical_consecutive_values():
    eng = Engine()
    rec = ObsRecorder(eng)
    with rec:
        rec.counter("res:x", "utilization", 0.5)
        rec.counter("res:x", "utilization", 0.5)  # dropped (same value)
        rec.counter("res:x", "utilization", 0.7)
        rec.counter("res:y", "utilization", 0.7)  # different track kept
    assert [(c.track, c.value) for c in rec.counters] == [
        ("res:x", 0.5), ("res:x", 0.7), ("res:y", 0.7),
    ]


def test_message_lifecycle():
    eng = Engine()
    rec = ObsRecorder(eng)

    def prog():
        mid = rec.msg_begin(0, 1, 7, 4096.0, "eager")
        yield Sleep(1.0)
        rec.msg_send_done(mid)
        yield Sleep(1.0)
        rec.msg_arrived(mid)
        yield Sleep(0.5)
        rec.msg_recv_done(mid)

    with rec:
        eng.spawn(prog(), name="p")
        eng.run()
    (m,) = rec.run_record().messages
    assert (m.src, m.dst, m.tag, m.nbytes, m.protocol) == (0, 1, 7, 4096.0, "eager")
    assert (m.t_send, m.t_send_done, m.t_arrive, m.t_recv_done) == (
        0.0, 1.0, 2.0, 2.5,
    )


def test_run_record_selectors():
    eng = Engine()
    rec = ObsRecorder(eng)
    with rec:
        rec.complete("rank0", "ib", 0.0, 1.0, "phase", seg=0)
        rec.complete("rank0", "sb", 0.5, 2.0, "phase", seg=0)
        rec.complete("cpu:rank0", "send_ov", 0.0, 0.1, "cpu")
    record = rec.run_record(meta={"coll": "bcast"})
    assert record.meta["coll"] == "bcast"
    assert {s.name for s in record.phase_spans()} == {"ib", "sb"}
    assert [s.name for s in record.phase_spans("ib")] == ["ib"]
    assert [s.name for s in record.spans_by_cat("cpu")] == ["send_ov"]
    assert record.tracks() == ["rank0", "cpu:rank0"]


def test_sim_time_in_meta():
    eng = Engine()
    rec = ObsRecorder(eng)

    def prog():
        yield Sleep(3.5)

    with rec:
        eng.spawn(prog(), name="p")
        eng.run()
    assert rec.run_record().sim_time == pytest.approx(3.5)
