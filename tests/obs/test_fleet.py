"""Fleet rollup and streaming insight engine.

Pins the two load-bearing claims of the fleet observatory:

- the streaming path (``InsightEngine.follow`` over ``RunStore.tail``)
  is bit-identical to the batch sweep (``ingest_store``) on the same
  records, including across a mid-stream compaction;
- ``fleet_report`` rolls a multi-machine store (two
  ``MACHINE_PRESETS``) into severity-ranked, cost-quantified findings
  with per-band regression status.
"""

import json

from repro.hardware.machines import MACHINE_PRESETS
from repro.obs import cli
from repro.obs.fleet import (
    STATUS_INSUFFICIENT,
    STATUS_OK,
    STATUS_REGRESSIONS,
    fleet_report,
    format_fleet,
    status_exit_code,
)
from repro.obs.insights import InsightEngine, check_regressions
from repro.obs.store import RunStore, summarize_point


def _preset(name, nodes=2, ppn=2):
    return MACHINE_PRESETS[name](num_nodes=nodes, ppn=ppn)


def _point(machine, coll, nbytes, time_s, wall, **kw):
    doc = summarize_point(machine, coll, nbytes, time_s, **kw)
    doc["wall_time"] = float(wall)
    return doc


def _seed_fleet(store, slow=False):
    """Two presets, two groups each, two runs per group.

    With ``slow`` the second run of every shaheen2 group is far outside
    the MAD band, so the fleet regresses on exactly one machine/band.
    """
    docs = []
    for name in ("shaheen2", "tiny_cluster"):
        m = _preset(name)
        blow = 5.0 if (slow and name == "shaheen2") else 1.0001
        for coll, nb, t in (("bcast", 1024, 1e-3), ("allreduce", 2048, 2e-3)):
            docs.append(_point(m, coll, nb, t, wall=len(docs)))
            docs.append(_point(m, coll, nb, t * blow, wall=100 + len(docs)))
    for doc in docs:
        store.append(doc)
    return docs


# -- streaming == batch bit-identity ------------------------------------------------


def _engine_doc(engine):
    stats = engine.stats()
    stats.pop("duplicates")  # an ingest-path counter, not derived state
    return json.dumps(
        {"insights": [i.to_doc() for i in engine.insights()],
         "machines": engine.machines(),
         "stats": stats},
        sort_keys=True,
    )


def test_streaming_follow_matches_batch_sweep(tmp_path):
    store = RunStore(tmp_path)
    m_a, m_b = _preset("shaheen2"), _preset("tiny_cluster")

    streaming = InsightEngine()
    cursor = streaming.follow(store)  # empty store: empty cursor
    for i in range(4):
        store.append(_point(m_a, "bcast", 1024, 1e-3 * (1 + 0.0001 * i),
                            wall=i))
        cursor = streaming.follow(store, cursor)
    store.compact()  # moves bytes into a segment under the cursor
    cursor = streaming.follow(store, cursor)
    for i in range(4):
        store.append(_point(m_b, "allreduce", 2048, 2e-3, wall=10 + i))
    cursor = streaming.follow(store, cursor)

    batch = InsightEngine()
    batch.ingest_store(store)
    assert _engine_doc(streaming) == _engine_doc(batch)
    # the compaction introduced no phantom records on the streaming side
    assert streaming.records == batch.records == 8


def test_engine_is_ingest_order_independent(tmp_path):
    store = RunStore(tmp_path)
    docs = _seed_fleet(store, slow=True)
    fwd, rev = InsightEngine(), InsightEngine()
    for doc in docs:
        fwd.ingest(doc)
    for doc in reversed(docs):
        rev.ingest(doc)
        rev.ingest(doc)  # duplicates must fold away
    assert _engine_doc(fwd) == _engine_doc(rev)
    assert rev.duplicates == len(docs)


def test_check_regressions_matches_engine(tmp_path):
    store = RunStore(tmp_path)
    _seed_fleet(store, slow=True)
    engine = InsightEngine()
    engine.ingest_store(store)
    assert [i.to_doc() for i in check_regressions(store)] == \
        [i.to_doc() for i in engine.regressions()]


# -- fleet report -------------------------------------------------------------------


def test_fleet_report_two_presets_with_regression(tmp_path):
    store = RunStore(tmp_path)
    _seed_fleet(store, slow=True)
    report = fleet_report([store])
    assert report["status"] == STATUS_REGRESSIONS
    assert report["exit_code"] == 1
    assert report["counts"]["machines"] == 2

    by_machine = {m["machine"]: m for m in report["machines"]}
    assert by_machine["shaheen2 2x2"]["status"] == STATUS_REGRESSIONS
    assert by_machine["tiny_cluster 2x2"]["status"] == STATUS_OK

    assert len(report["bands"]) == 2  # distinct hardware, distinct bands
    band_status = {b["machines"][0]: b["status"] for b in report["bands"]}
    assert band_status["shaheen2 2x2"] == STATUS_REGRESSIONS
    assert band_status["tiny_cluster 2x2"] == STATUS_OK

    findings = report["findings"]
    assert len(findings) == 2  # both shaheen2 groups blew their bands
    for f in findings:
        assert f["grade"] == "error"  # 5x is far past the 10% threshold
        assert f["cost_seconds"] > 0
        assert f["cost_bytes"] > 0
    # ranked by damage: worst cost first within a grade
    costs = [f["cost_seconds"] for f in findings]
    assert costs == sorted(costs, reverse=True)

    text = format_fleet(report)
    assert "status: regressions" in text
    assert "[error]" in text


def test_fleet_report_clean_and_insufficient(tmp_path):
    clean = RunStore(tmp_path / "clean")
    _seed_fleet(clean, slow=False)
    report = fleet_report([clean])
    assert report["status"] == STATUS_OK
    assert report["exit_code"] == 0
    assert report["findings"] == []

    thin = RunStore(tmp_path / "thin")
    thin.append(_point(_preset("shaheen2"), "bcast", 1024, 1e-3, wall=0))
    report = fleet_report([thin])
    assert report["status"] == STATUS_INSUFFICIENT
    assert report["exit_code"] == 2


def test_fleet_report_is_store_partition_independent(tmp_path):
    """One merged store and two half-stores roll up identically."""
    merged = RunStore(tmp_path / "merged")
    docs = _seed_fleet(merged, slow=True)
    a, b = RunStore(tmp_path / "a"), RunStore(tmp_path / "b")
    for i, doc in enumerate(docs):
        (a if i % 2 else b).append(doc)
    one = fleet_report([merged])
    two = fleet_report([a, b])
    for field in ("status", "machines", "bands", "findings",
                  "regressions", "stragglers", "interference"):
        assert one[field] == two[field]


def test_status_exit_codes():
    assert status_exit_code(STATUS_OK) == 0
    assert status_exit_code(STATUS_REGRESSIONS) == 1
    assert status_exit_code(STATUS_INSUFFICIENT) == 2


# -- CLI ----------------------------------------------------------------------------


def test_cli_regress_statuses(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    store = RunStore(store_dir)
    store.append(_point(_preset("shaheen2"), "bcast", 1024, 1e-3, wall=0))
    assert cli.main(["regress", store_dir, "--json"]) == 2
    doc = json.loads(capsys.readouterr().out)
    assert doc["status"] == STATUS_INSUFFICIENT and doc["exit_code"] == 2

    store.append(_point(_preset("shaheen2"), "bcast", 1024, 1e-3, wall=1))
    assert cli.main(["regress", store_dir, "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["status"] == STATUS_OK

    store.append(_point(_preset("shaheen2"), "bcast", 1024, 9e-3, wall=2))
    assert cli.main(["regress", store_dir, "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["status"] == STATUS_REGRESSIONS
    assert doc["checks"][0]["cost_seconds"] > 0


def test_cli_compact_then_fleet_json(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    _seed_fleet(RunStore(store_dir), slow=True)
    assert cli.main(["compact", store_dir]) == 0
    capsys.readouterr()
    assert cli.main(["fleet", store_dir, "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["status"] == STATUS_REGRESSIONS
    assert len(report["machines"]) == 2
    assert report["findings"][0]["grade"] == "error"
