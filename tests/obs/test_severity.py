"""PICO-style severity grading shared by insights and serve verdicts."""

import math

from repro.obs.severity import (
    ERROR_REL_EXCESS,
    OK,
    Severity,
    grade_excess,
    severity,
)


def test_grade_threshold():
    assert grade_excess(ERROR_REL_EXCESS - 1e-9) == "warn"
    assert grade_excess(ERROR_REL_EXCESS) == "error"
    assert grade_excess(10.0) == "error"


def test_within_bound_is_ok():
    assert severity(0.9, 1.0) is OK
    assert severity(1.0, 1.0) is OK
    assert severity(1.04, 1.0, tol=0.05) is OK  # tolerance absorbs it
    assert OK.ok and OK.cost_seconds == 0.0


def test_excess_is_quantified_against_the_bound():
    sev = severity(1.05, 1.0)
    assert sev.grade == "warn" and not sev.ok
    assert math.isclose(sev.cost_seconds, 0.05)
    assert math.isclose(sev.rel_excess, 0.05)

    sev = severity(2.0, 1.0, nbytes=100.0)
    assert sev.grade == "error"
    assert math.isclose(sev.cost_seconds, 1.0)
    # bytes-equivalent at achieved throughput: 100B / 2s * 1s excess
    assert math.isclose(sev.cost_bytes, 50.0)


def test_tolerance_gates_but_does_not_shrink_cost():
    # same bound, different tolerances: once violated, same damage scale
    loose = severity(1.5, 1.0, tol=0.3)
    tight = severity(1.5, 1.0, tol=0.0)
    assert math.isclose(loose.cost_seconds, tight.cost_seconds)
    assert math.isclose(loose.rel_excess, tight.rel_excess)


def test_degenerate_bounds_fail_loudly():
    sev = severity(1.0, 0.0)
    assert sev.grade == "error"
    assert sev.cost_seconds == float("inf")
    assert severity(1.0, float("nan")).grade == "error"
    assert severity(0.0, 0.0).ok  # not over a zero bound: fine


def test_to_doc_round_trip():
    sev = Severity(grade="warn", cost_seconds=0.1, cost_bytes=2.0,
                   rel_excess=0.05)
    assert sev.to_doc() == {"grade": "warn", "cost_seconds": 0.1,
                            "cost_bytes": 2.0, "rel_excess": 0.05}
