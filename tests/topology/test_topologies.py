"""Tests for interconnect topologies and routing."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    Crossbar,
    Dragonfly,
    FatTree,
    Hypercube,
    Torus,
    make_topology,
)

ALL_KINDS = ["crossbar", "dragonfly", "fattree", "hypercube", "torus"]


def build(kind, n):
    return make_topology(kind, n, link_bw=1e9)


@pytest.mark.parametrize("kind", ALL_KINDS)
@pytest.mark.parametrize("n", [1, 2, 5, 16, 33])
def test_route_self_is_empty(kind, n):
    topo = build(kind, n)
    for i in range(0, n, max(1, n // 4)):
        assert topo.route(i, i) == ()


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_route_out_of_range_raises(kind):
    topo = build(kind, 4)
    with pytest.raises(IndexError):
        topo.route(0, 4)
    with pytest.raises(IndexError):
        topo.route(-1, 0)


@pytest.mark.parametrize("kind", ALL_KINDS)
@pytest.mark.parametrize("n", [2, 7, 16, 40])
def test_all_routes_are_connected_walks(kind, n):
    topo = build(kind, n)
    for a in range(n):
        for b in range(n):
            assert topo.validate_route(a, b), (kind, a, b)


def test_unknown_topology_rejected():
    with pytest.raises(ValueError, match="unknown topology"):
        make_topology("moebius", 4, 1e9)


def test_crossbar_has_no_links():
    topo = Crossbar(16)
    assert topo.links == []
    assert topo.route(3, 12) == ()


class TestFatTree:
    def test_same_edge_switch_no_fabric_links(self):
        topo = FatTree(32, 1e9, nodes_per_edge=16, num_core=4)
        assert topo.route(0, 15) == ()
        assert len(topo.route(0, 16)) == 2

    def test_up_down_route_via_one_core(self):
        topo = FatTree(64, 1e9, nodes_per_edge=8, num_core=4)
        up, down = topo.route(0, 63)
        assert topo.links[up].src == "edge0"
        assert topo.links[up].dst.startswith("core")
        assert topo.links[down].src == topo.links[up].dst
        assert topo.links[down].dst == "edge7"

    def test_taper_reduces_uplink_capacity(self):
        full = FatTree(32, 1e9, nodes_per_edge=8, num_core=2, taper=1.0)
        tapered = FatTree(32, 1e9, nodes_per_edge=8, num_core=2, taper=2.0)
        assert tapered.links[0].capacity == pytest.approx(
            full.links[0].capacity / 2.0
        )

    def test_invalid_taper(self):
        with pytest.raises(ValueError):
            FatTree(8, 1e9, taper=0.5)


class TestDragonfly:
    def test_same_router_no_links(self):
        topo = Dragonfly(64, 1e9, nodes_per_router=4)
        assert topo.route(0, 3) == ()

    def test_same_group_single_local_hop(self):
        topo = Dragonfly(64, 1e9, nodes_per_router=4, routers_per_group=4)
        # nodes 0 and 4 are on routers 0 and 1 of group 0
        r = topo.route(0, 4)
        assert len(r) == 1

    def test_inter_group_at_most_three_hops(self):
        topo = Dragonfly(
            128, 1e9, nodes_per_router=4, routers_per_group=4,
            global_links_per_router=2,
        )
        for a in range(0, 128, 17):
            for b in range(0, 128, 13):
                assert len(topo.route(a, b)) <= 3

    def test_group_of(self):
        topo = Dragonfly(64, 1e9, nodes_per_router=4, routers_per_group=4)
        assert topo.group_of(0) == 0
        assert topo.group_of(16) == 1


class TestTorus:
    def test_explicit_dims(self):
        topo = Torus(16, 1e9, dims=(4, 4))
        assert topo.dims == (4, 4)

    def test_dims_too_small_rejected(self):
        with pytest.raises(ValueError):
            Torus(16, 1e9, dims=(2, 2))

    def test_wraparound_shortens_route(self):
        topo = Torus(8, 1e9, dims=(8,))
        # 0 -> 7 should wrap (1 hop), not walk 7 hops.
        assert len(topo.route(0, 7)) == 1
        assert len(topo.route(0, 4)) == 4

    def test_manhattan_distance_3d(self):
        topo = Torus(27, 1e9, dims=(3, 3, 3))
        assert len(topo.route(0, 26)) == 3  # (+1,+1,+1) with wrap = 1+1+1


class TestHypercube:
    def test_hop_count_is_hamming_distance(self):
        topo = Hypercube(16, 1e9)
        assert len(topo.route(0b0000, 0b1011)) == 3
        assert len(topo.route(0b0101, 0b0101)) == 0

    def test_nonpow2_padded(self):
        topo = Hypercube(5, 1e9)
        assert topo.dim == 3
        assert topo.validate_route(0, 4)


@settings(max_examples=50, deadline=None)
@given(
    kind=st.sampled_from(ALL_KINDS),
    n=st.integers(2, 48),
    pair=st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
)
def test_property_routes_valid_and_symmetric_length(kind, n, pair):
    topo = build(kind, n)
    a, b = pair[0] % n, pair[1] % n
    assert topo.validate_route(a, b)
    # minimal routing in these regular topologies gives symmetric hop counts
    assert len(topo.route(a, b)) == len(topo.route(b, a))


@pytest.mark.parametrize("kind", ["dragonfly", "fattree", "torus", "hypercube"])
def test_link_graph_is_strongly_connected_over_switches(kind):
    topo = build(kind, 16)
    g = topo.to_networkx()
    if g.number_of_nodes() > 1:
        assert nx.is_strongly_connected(g)
