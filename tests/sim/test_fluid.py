"""Unit + property tests for the max-min fluid bandwidth solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FluidSolver


def make():
    eng = Engine()
    net = FluidSolver(eng)
    return eng, net


def record_completion(times, eng, key):
    def cb():
        times[key] = eng.now

    return cb


def test_single_flow_duration_is_bytes_over_capacity():
    eng, net = make()
    r = net.add_resource(100.0)  # 100 B/s
    done = {}
    net.start_flow(1000.0, [r], record_completion(done, eng, "f"))
    eng.run()
    assert done["f"] == pytest.approx(10.0)


def test_two_flows_share_fairly():
    eng, net = make()
    r = net.add_resource(100.0)
    done = {}
    net.start_flow(1000.0, [r], record_completion(done, eng, "a"))
    net.start_flow(1000.0, [r], record_completion(done, eng, "b"))
    eng.run()
    # Each gets 50 B/s -> 20 s.
    assert done["a"] == pytest.approx(20.0)
    assert done["b"] == pytest.approx(20.0)


def test_short_flow_finishes_then_long_flow_speeds_up():
    eng, net = make()
    r = net.add_resource(100.0)
    done = {}
    net.start_flow(500.0, [r], record_completion(done, eng, "short"))
    net.start_flow(1500.0, [r], record_completion(done, eng, "long"))
    eng.run()
    # Both at 50 B/s until t=10 when short ends (500 B); long then has
    # 1000 B left at 100 B/s -> finishes at t=20.
    assert done["short"] == pytest.approx(10.0)
    assert done["long"] == pytest.approx(20.0)


def test_rate_cap_limits_single_flow():
    eng, net = make()
    r = net.add_resource(100.0)
    done = {}
    net.start_flow(100.0, [r], record_completion(done, eng, "f"), rate_cap=10.0)
    eng.run()
    assert done["f"] == pytest.approx(10.0)


def test_capped_flow_leaves_bandwidth_for_others():
    eng, net = make()
    r = net.add_resource(100.0)
    done = {}
    net.start_flow(100.0, [r], record_completion(done, eng, "capped"), rate_cap=10.0)
    net.start_flow(900.0, [r], record_completion(done, eng, "free"))
    eng.run()
    # capped runs at 10, free gets 90 -> both end at t=10.
    assert done["capped"] == pytest.approx(10.0)
    assert done["free"] == pytest.approx(10.0)


def test_multi_resource_bottleneck():
    eng, net = make()
    wide = net.add_resource(100.0)
    narrow = net.add_resource(10.0)
    done = {}
    net.start_flow(100.0, [wide, narrow], record_completion(done, eng, "f"))
    eng.run()
    assert done["f"] == pytest.approx(10.0)


def test_duplicate_resource_counts_double():
    # A flow listing the same resource twice consumes 2x bandwidth per byte
    # (how intra-node copy-in + copy-out over one memory bus is modelled).
    eng, net = make()
    bus = net.add_resource(100.0)
    done = {}
    net.start_flow(100.0, [bus, bus], record_completion(done, eng, "f"))
    eng.run()
    assert done["f"] == pytest.approx(2.0)


def test_weighted_sharing():
    eng, net = make()
    r = net.add_resource(90.0)
    done = {}
    net.start_flow(600.0, [r], record_completion(done, eng, "w2"), weight=2.0)
    net.start_flow(600.0, [r], record_completion(done, eng, "w1"), weight=1.0)
    eng.run()
    # w2 gets 60 B/s (ends t=10), w1 gets 30 B/s until t=10 (300 B done)
    # then 90 B/s for remaining 300 B -> ends t=10+300/90.
    assert done["w2"] == pytest.approx(10.0)
    assert done["w1"] == pytest.approx(10.0 + 300.0 / 90.0)


def test_zero_byte_flow_completes_immediately():
    eng, net = make()
    r = net.add_resource(1.0)
    done = {}
    net.start_flow(0.0, [r], record_completion(done, eng, "z"))
    eng.run()
    assert done["z"] == 0.0
    assert net.active_flows == 0


def test_flow_without_resources_needs_cap_or_completes():
    eng, net = make()
    done = {}
    net.start_flow(100.0, [], record_completion(done, eng, "inf"))
    eng.run()
    assert done["inf"] == 0.0  # unconstrained -> instantaneous
    net.start_flow(100.0, [], record_completion(done, eng, "capped"), rate_cap=10.0)
    eng.run()
    assert done["capped"] == pytest.approx(10.0)


def test_abort_flow_frees_bandwidth():
    eng, net = make()
    r = net.add_resource(100.0)
    done = {}
    fid = net.start_flow(10000.0, [r], record_completion(done, eng, "dead"))
    net.start_flow(1000.0, [r], record_completion(done, eng, "live"))

    def killer():
        from repro.sim import Sleep

        yield Sleep(5.0)
        net.abort_flow(fid)

    eng.spawn(killer())
    eng.run()
    assert "dead" not in done
    # live: 50 B/s for 5 s (250 B), then 100 B/s for 750 B -> t = 12.5
    assert done["live"] == pytest.approx(12.5)


def test_unknown_resource_rejected():
    eng, net = make()
    with pytest.raises(IndexError):
        net.start_flow(10.0, [99], lambda: None)


def test_bad_capacity_rejected():
    _, net = make()
    with pytest.raises(ValueError):
        net.add_resource(0.0)
    with pytest.raises(ValueError):
        net.add_resource(-5.0)


def test_negative_bytes_rejected():
    eng, net = make()
    r = net.add_resource(1.0)
    with pytest.raises(ValueError):
        net.start_flow(-1.0, [r], lambda: None)


def test_parking_lot_topology_max_min():
    # Classic max-min example: flow A crosses r1 and r2; flow B only r1;
    # flow C only r2.  r1 = r2 = 100.  Max-min: all get 50.
    eng, net = make()
    r1 = net.add_resource(100.0)
    r2 = net.add_resource(100.0)
    done = {}
    net.start_flow(500.0, [r1, r2], record_completion(done, eng, "A"))
    net.start_flow(500.0, [r1], record_completion(done, eng, "B"))
    net.start_flow(500.0, [r2], record_completion(done, eng, "C"))
    eng.run(until=9.999)
    # before any completion all three run at 50 B/s
    assert done == {}
    eng.run()
    assert done["A"] == pytest.approx(10.0)


def test_staggered_arrivals():
    eng, net = make()
    r = net.add_resource(100.0)
    done = {}

    def starter():
        from repro.sim import Sleep

        net.start_flow(1000.0, [r], record_completion(done, eng, "first"))
        yield Sleep(5.0)
        net.start_flow(250.0, [r], record_completion(done, eng, "second"))

    eng.spawn(starter())
    eng.run()
    # first: 100 B/s for 5 s (500 B), then 50 B/s with second.
    # second (250 B at 50 B/s) ends at t=10; first has 250 B left
    # -> full rate again, ends 12.5.
    assert done["second"] == pytest.approx(10.0)
    assert done["first"] == pytest.approx(12.5)


@settings(max_examples=60, deadline=None)
@given(
    caps=st.lists(st.floats(1.0, 1e6), min_size=1, max_size=5),
    flows=st.lists(
        st.tuples(
            st.floats(1.0, 1e5),  # bytes
            st.data(),
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_property_all_flows_complete_and_capacity_respected(caps, flows):
    """Every flow completes in finite time, no faster than physics allows."""
    eng, net = make()
    rids = [net.add_resource(c) for c in caps]
    done = {}
    specs = []
    for i, (nbytes, data) in enumerate(flows):
        route = data.draw(
            st.lists(st.sampled_from(rids), min_size=1, max_size=3), label="route"
        )
        net.start_flow(nbytes, route, record_completion(done, eng, i))
        specs.append((nbytes, route))
    eng.run()
    assert len(done) == len(flows)
    for i, (nbytes, route) in enumerate(specs):
        # Lower bound: a flow alone can't beat its tightest resource
        # (accounting for duplicate-resource multiplicity).
        best = min(
            net.capacity(r) / route.count(r) for r in set(route)
        )
        assert done[i] >= nbytes / best - 1e-6


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 10),
    cap=st.floats(10.0, 1e4),
    nbytes=st.floats(1.0, 1e4),
)
def test_property_equal_flows_finish_together(n, cap, nbytes):
    """n identical flows over one resource all finish at n*bytes/cap."""
    eng, net = make()
    r = net.add_resource(cap)
    done = {}
    for i in range(n):
        net.start_flow(nbytes, [r], record_completion(done, eng, i))
    eng.run()
    expect = n * nbytes / cap
    for i in range(n):
        assert done[i] == pytest.approx(expect, rel=1e-9)


def test_utilization_reports_busy_fraction():
    eng, net = make()
    r = net.add_resource(100.0)
    net.start_flow(1000.0, [r], lambda: None)
    eng.run(until=1.0)
    util = net.utilization()
    assert util[0] == pytest.approx(1.0)


def test_conservation_total_bytes():
    # Sum over flows of rate*dt must equal bytes injected.
    eng, net = make()
    r = net.add_resource(123.0)
    done = {}
    total = 0.0
    for i, b in enumerate([100.0, 300.0, 50.0, 777.0]):
        net.start_flow(b, [r], record_completion(done, eng, i))
        total += b
    end = eng.run()
    # Single shared resource at full utilisation the whole time:
    assert end == pytest.approx(total / 123.0)


def test_time_integrated_accounting_basics():
    eng, net = make()
    r = net.add_resource(100.0, name="link")
    done = {}
    net.start_flow(500.0, [r], record_completion(done, eng, "f"))
    eng.run()
    net.sync_accounting()
    assert net.resource_name(r) == "link"
    assert net.busy_time(r) == pytest.approx(5.0)
    assert net.served_bytes(r) == pytest.approx(500.0)
    # flow ran 0..5 at full rate; at horizon=now (5 s) utilization is 1
    assert net.mean_utilization(r) == pytest.approx(1.0)
    assert net.mean_utilization(r, horizon=10.0) == pytest.approx(0.5)


def test_accounting_counts_busy_not_instantaneous():
    """utilization() is instantaneous (zero after the flow ends);
    busy_time() integrates, so it keeps the history."""
    eng, net = make()
    r = net.add_resource(100.0)
    net.start_flow(200.0, [r], lambda: None)
    eng.run()
    assert net.utilization()[0] == 0.0  # nothing in flight *now*
    net.sync_accounting()
    assert net.busy_time(r) == pytest.approx(2.0)  # ...but it was busy


def test_accounting_exact_across_mid_flow_capacity_rescale():
    """The busy/served integrals must use the *old* rates for time
    before a rescale and the new rates after it."""
    eng, net = make()
    r = net.add_resource(100.0, name="link")
    done = {}
    net.start_flow(1000.0, [r], record_completion(done, eng, "f"))
    # At t=2 (200 B drained) halve the capacity: the remaining 800 B
    # drain at 50 B/s -> completion at t = 2 + 16 = 18.
    eng.schedule(2.0, lambda: net.set_capacity(r, 50.0))
    eng.run()
    assert done["f"] == pytest.approx(18.0)
    net.sync_accounting()
    assert net.busy_time(r) == pytest.approx(18.0)
    assert net.served_bytes(r) == pytest.approx(1000.0)
    # mean_utilization uses the *current* capacity (50 B/s) over 18 s
    assert net.mean_utilization(r) == pytest.approx(1000.0 / (50.0 * 18.0))


def test_accounting_idle_gap_not_counted_busy():
    eng, net = make()
    r = net.add_resource(100.0)
    done = {}
    net.start_flow(100.0, [r], record_completion(done, eng, "a"))  # 0..1
    # second flow starts after a 2-second idle gap
    eng.schedule(
        3.0,
        lambda: net.start_flow(100.0, [r], record_completion(done, eng, "b")),
    )
    eng.run()
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(4.0)
    net.sync_accounting()
    assert net.busy_time(r) == pytest.approx(2.0)  # 0..1 and 3..4
    assert net.served_bytes(r) == pytest.approx(200.0)


def test_accounting_zero_capacity_stall_not_busy():
    """A flow stalled on a dead resource accrues no busy time."""
    eng, net = make()
    r = net.add_resource(100.0)
    done = {}
    net.start_flow(200.0, [r], record_completion(done, eng, "f"))
    eng.schedule(1.0, lambda: net.set_capacity(r, 0.0))  # die at t=1
    eng.schedule(5.0, lambda: net.set_capacity(r, 100.0))  # revive at t=5
    eng.run()
    # 100 B by t=1, stall 1..5, last 100 B in 5..6
    assert done["f"] == pytest.approx(6.0)
    net.sync_accounting()
    assert net.busy_time(r) == pytest.approx(2.0)
    assert net.served_bytes(r) == pytest.approx(200.0)


def test_flow_rate_after_completion_returns_zero():
    """Regression: polling a completed fid used to raise KeyError."""
    eng, net = make()
    r = net.add_resource(100.0)
    done = {}
    fid = net.start_flow(100.0, [r], record_completion(done, eng, "f"))
    eng.run()
    assert done["f"] == pytest.approx(1.0)
    assert net.flow_rate(fid) == 0.0
    assert net.flow_remaining(fid) == 0.0
    # aborted and instantaneous (-1) pseudo-fids answer 0.0 too
    fid2 = net.start_flow(100.0, [r], lambda: None)
    net.abort_flow(fid2)
    assert net.flow_rate(fid2) == 0.0
    assert net.flow_rate(-1) == 0.0


@pytest.mark.parametrize("mode", ["incremental", "reference"])
def test_zero_capacity_stall_and_resume_rates(mode):
    """set_capacity(0) stalls in-flight flows at rate 0 (no stall error);
    restoring the capacity resumes them and they finish exactly."""
    eng = Engine()
    net = FluidSolver(eng, mode=mode)
    r = net.add_resource(100.0)
    done = {}
    fid = net.start_flow(300.0, [r], record_completion(done, eng, "f"))
    rates = {}

    def probe(key):
        def cb():
            rates[key] = net.flow_rate(fid)

        return cb

    eng.schedule(0.5, probe("before"))
    eng.schedule(1.0, lambda: net.set_capacity(r, 0.0))
    eng.schedule(2.0, probe("stalled"))
    eng.schedule(3.0, lambda: net.set_capacity(r, 50.0))
    eng.schedule(3.5, probe("resumed"))
    eng.run()
    assert rates == {"before": 100.0, "stalled": 0.0, "resumed": 50.0}
    # 100 B by t=1, stall 1..3, 200 B at 50 B/s -> done at t=7
    assert done["f"] == pytest.approx(7.0)


@pytest.mark.parametrize("mode", ["incremental", "reference"])
def test_flow_started_on_dead_resource_waits_for_revival(mode):
    eng = Engine()
    net = FluidSolver(eng, mode=mode)
    r = net.add_resource(100.0)
    done = {}
    eng.schedule(0.0, lambda: net.set_capacity(r, 0.0))
    eng.schedule(
        1.0, lambda: net.start_flow(100.0, [r], record_completion(done, eng, "f"))
    )
    eng.schedule(4.0, lambda: net.set_capacity(r, 100.0))
    eng.run()
    assert done["f"] == pytest.approx(5.0)
