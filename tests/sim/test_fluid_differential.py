"""Differential fuzzing: incremental fluid solver vs the reference mode.

Each seed builds one random flow schedule — random topology sizes,
routes (duplicate resource ids allowed), weights, rate caps, mid-flight
capacity rescales (including zero-capacity dead windows), and aborts —
and replays it under both solver modes.  Every observable is compared
with exact ``==``: completion instants, abort instants, sampled flow
rates, and the busy-time / served-bytes accounting integrals.

The reference mode always runs with the progressive-fill memo disabled,
so it is the pure re-solve-everything oracle.  The incremental side runs
with the memo for most seeds and without it for a subset, exercising
both the memo path and the raw per-component kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.engine import Engine
from repro.sim.fluid import FluidSolver


def make_schedule(seed: int):
    """Purely rng-derived schedule; identical floats for every replay."""
    rng = np.random.default_rng(seed)
    nres = int(rng.integers(2, 10))
    caps = [float(c) for c in 10.0 ** rng.uniform(2.0, 5.0, nres)]

    flows = []
    for _ in range(int(rng.integers(3, 25))):
        start = float(rng.uniform(0.0, 5.0))
        nbytes = float(10.0 ** rng.uniform(1.0, 5.0))
        route = [int(r) for r in rng.integers(0, nres, int(rng.integers(1, 5)))]
        rate_cap = (
            float(10.0 ** rng.uniform(2.0, 5.0))
            if rng.random() < 0.5
            else float("inf")
        )
        weight = float(rng.uniform(0.25, 4.0)) if rng.random() < 0.5 else 1.0
        flows.append((start, nbytes, route, rate_cap, weight))

    cap_events = []
    for _ in range(int(rng.integers(0, 6))):
        t = float(rng.uniform(0.0, 8.0))
        rid = int(rng.integers(0, nres))
        if rng.random() < 0.3:
            # dead window: capacity to zero, restored later — in-flight
            # flows must stall (no RuntimeError) and resume exactly
            cap_events.append((t, rid, 0.0))
            cap_events.append((t + float(rng.uniform(0.5, 2.0)), rid, caps[rid]))
        else:
            cap_events.append((t, rid, caps[rid] * float(rng.uniform(0.3, 2.0))))

    aborts = [
        (float(rng.uniform(0.0, 6.0)), int(rng.integers(0, len(flows))))
        for _ in range(int(rng.integers(0, 4)))
    ]
    probes = sorted(float(rng.uniform(0.0, 10.0)) for _ in range(3))
    return caps, flows, cap_events, aborts, probes


def make_fabric_schedule(seed: int):
    """Fabric-tier topology: nodes carrying *two* NVLink-island resources
    plus a PCIe bridge, wired to a shared network resource.

    Mirrors the resource layout ``netsim.fabric`` builds for
    ``fabric_domains=2`` presets (``gpu_pod``): intra-island flows touch
    one resource, cross-island flows ride island -> bridge -> island,
    and inter-node flows stack island, bridge, and network.  Same
    reproducibility contract as :func:`make_schedule` — purely
    rng-derived, identical floats on every replay.
    """
    rng = np.random.default_rng([0xFAB, seed])
    nnodes = int(rng.integers(1, 4))
    caps = []
    islands, bridges = [], []  # resource ids per node
    for _ in range(nnodes):
        a, b, pcie = len(caps), len(caps) + 1, len(caps) + 2
        caps += [
            float(10.0 ** rng.uniform(4.0, 5.5)),  # island 0 (nvlink)
            float(10.0 ** rng.uniform(4.0, 5.5)),  # island 1 (nvlink)
            float(10.0 ** rng.uniform(3.0, 4.5)),  # pcie bridge
        ]
        islands.append((a, b))
        bridges.append(pcie)
    net = len(caps)
    caps.append(float(10.0 ** rng.uniform(3.5, 5.0)))

    flows = []
    for _ in range(int(rng.integers(4, 25))):
        start = float(rng.uniform(0.0, 5.0))
        nbytes = float(10.0 ** rng.uniform(1.0, 5.0))
        src = int(rng.integers(0, nnodes))
        kind = rng.random()
        if kind < 0.4:  # intra-island
            route = [islands[src][int(rng.integers(0, 2))]]
        elif kind < 0.7:  # cross-island within the node
            route = [islands[src][0], bridges[src], islands[src][1]]
        else:  # inter-node: island -> bridge -> net -> bridge -> island
            dst = int(rng.integers(0, nnodes))
            route = [
                islands[src][int(rng.integers(0, 2))], bridges[src], net,
                bridges[dst], islands[dst][int(rng.integers(0, 2))],
            ]
        rate_cap = (
            float(10.0 ** rng.uniform(3.0, 5.0))
            if rng.random() < 0.5
            else float("inf")
        )
        weight = float(rng.uniform(0.25, 4.0)) if rng.random() < 0.5 else 1.0
        flows.append((start, nbytes, route, rate_cap, weight))

    cap_events = []
    for _ in range(int(rng.integers(0, 5))):
        t = float(rng.uniform(0.0, 8.0))
        rid = int(rng.integers(0, len(caps)))
        if rng.random() < 0.3:
            # dead island/bridge window, restored later
            cap_events.append((t, rid, 0.0))
            cap_events.append((t + float(rng.uniform(0.5, 2.0)), rid, caps[rid]))
        else:
            cap_events.append((t, rid, caps[rid] * float(rng.uniform(0.3, 2.0))))

    aborts = [
        (float(rng.uniform(0.0, 6.0)), int(rng.integers(0, len(flows))))
        for _ in range(int(rng.integers(0, 4)))
    ]
    probes = sorted(float(rng.uniform(0.0, 10.0)) for _ in range(3))
    return caps, flows, cap_events, aborts, probes


def run_schedule(mode: str, schedule, memo: bool, monkeypatch):
    monkeypatch.setenv("REPRO_FLUID_FILL_MEMO", "1" if memo else "0")
    caps, flows, cap_events, aborts, probes = schedule
    engine = Engine()
    solver = FluidSolver(engine, mode=mode)
    rids = [solver.add_resource(c, name=f"r{i}") for i, c in enumerate(caps)]

    log: list = []
    fid_of: dict[int, int] = {}

    for i, (start, nbytes, route, rate_cap, weight) in enumerate(flows):
        def launch(i=i, nbytes=nbytes, route=route, rate_cap=rate_cap,
                   weight=weight):
            fid_of[i] = solver.start_flow(
                nbytes,
                route,
                lambda i=i: log.append(("done", i, engine.now)),
                rate_cap=rate_cap,
                weight=weight,
            )
        engine.schedule_at(start, launch)

    for t, rid, cap in cap_events:
        engine.schedule_at(
            t, lambda rid=rid, cap=cap: solver.set_capacity(rid, cap)
        )

    for t, i in aborts:
        def abort(i=i):
            fid = fid_of.get(i)
            if fid is not None:
                solver.abort_flow(fid)
                log.append(("abort", i, engine.now))
        engine.schedule_at(t, abort)

    for t in probes:
        def probe():
            solver.sync_accounting()
            log.append((
                "probe",
                engine.now,
                tuple(solver.flow_rate(fid_of.get(i, -1))
                      for i in range(len(flows))),
                tuple((solver.busy_time(r), solver.served_bytes(r))
                      for r in rids),
            ))
        engine.schedule_at(t, probe)

    engine.run()
    solver.sync_accounting()
    log.append((
        "final",
        engine.now,
        solver.active_flows,
        tuple((solver.busy_time(r), solver.served_bytes(r)) for r in rids),
    ))
    return log


@pytest.mark.parametrize("seed", range(200))
def test_incremental_matches_reference(seed, monkeypatch):
    schedule = make_schedule(seed)
    ref = run_schedule("reference", schedule, memo=False,
                       monkeypatch=monkeypatch)
    inc = run_schedule("incremental", schedule, memo=True,
                       monkeypatch=monkeypatch)
    assert inc == ref


@pytest.mark.parametrize("seed", range(100))
def test_fabric_incremental_matches_reference(seed, monkeypatch):
    """Fabric-tier routes (two-island nodes) are bit-identical too."""
    schedule = make_fabric_schedule(seed)
    ref = run_schedule("reference", schedule, memo=False,
                       monkeypatch=monkeypatch)
    inc = run_schedule("incremental", schedule, memo=True,
                       monkeypatch=monkeypatch)
    assert inc == ref


@pytest.mark.parametrize("seed", range(0, 100, 10))
def test_fabric_incremental_kernel_without_memo(seed, monkeypatch):
    """Fabric corpus against the raw kernel (memo off on both sides)."""
    schedule = make_fabric_schedule(seed)
    ref = run_schedule("reference", schedule, memo=False,
                       monkeypatch=monkeypatch)
    inc = run_schedule("incremental", schedule, memo=False,
                       monkeypatch=monkeypatch)
    assert inc == ref


@pytest.mark.parametrize("seed", range(0, 200, 8))
def test_incremental_kernel_without_memo(seed, monkeypatch):
    """Same comparison with the solve memo disabled on both sides.

    Guarantees the per-component kernel itself — not memo replay of an
    earlier kernel output — reproduces the reference bit-for-bit.
    """
    schedule = make_schedule(seed)
    ref = run_schedule("reference", schedule, memo=False,
                       monkeypatch=monkeypatch)
    inc = run_schedule("incremental", schedule, memo=False,
                       monkeypatch=monkeypatch)
    assert inc == ref
