"""Tests for the tracing facility."""

from repro.sim import Engine, Sleep
from repro.sim.trace import Tracer


def test_records_custom_marks_with_time():
    eng = Engine()
    tr = Tracer(eng)

    def prog():
        tr.record("p0", "phase-a")
        yield Sleep(1.0)
        tr.record("p0", "phase-b")

    eng.spawn(prog(), name="p0")
    eng.run()
    labels = [(e.time, e.label) for e in tr.for_actor("p0")]
    assert (0.0, "phase-a") in labels
    assert (1.0, "phase-b") in labels


def test_engine_finish_events_traced():
    eng = Engine()
    tr = Tracer(eng)

    def prog():
        yield Sleep(2.0)

    eng.spawn(prog(), name="worker")
    eng.run()
    assert any(e.label == "finish" and e.actor == "worker" for e in tr.events)


def test_spans_pairing():
    eng = Engine()
    tr = Tracer(eng)

    def prog():
        for _ in range(3):
            tr.record("p", "start")
            yield Sleep(0.5)
            tr.record("p", "end")
            yield Sleep(0.1)

    eng.spawn(prog(), name="p")
    eng.run()
    spans = tr.spans("p", "start", "end")
    assert len(spans) == 3
    for b, e in spans:
        assert e - b == 0.5 or abs(e - b - 0.5) < 1e-12


def test_limit_drops_excess():
    eng = Engine()
    tr = Tracer(eng, limit=5)
    for i in range(10):
        tr.record("x", f"m{i}")
    assert len(tr.events) == 5
    assert tr.dropped == 5


def test_to_text_and_close():
    eng = Engine()
    tr = Tracer(eng)
    tr.record("a", "hello")
    text = tr.to_text()
    assert "hello" in text and "a" in text
    tr.close()
    assert eng.trace_hook is None


def test_ring_buffer_keeps_newest_events():
    eng = Engine()
    tr = Tracer(eng, limit=3)
    for i in range(8):
        tr.record("x", f"m{i}")
    assert [e.label for e in tr.events] == ["m5", "m6", "m7"]
    assert tr.dropped == 5


def test_to_text_reports_dropped_count():
    eng = Engine()
    tr = Tracer(eng, limit=2)
    for i in range(5):
        tr.record("x", f"m{i}")
    text = tr.to_text()
    assert "3 older events dropped" in text
    assert "m4" in text and "m0" not in text


def test_context_manager_restores_previous_hook():
    eng = Engine()
    seen = []

    def original(t, actor, label):
        seen.append((t, actor, label))

    eng.trace_hook = original
    with Tracer(eng) as tr:
        assert eng.trace_hook is not original

        def prog():
            yield Sleep(1.0)

        eng.spawn(prog(), name="w")
        eng.run()
    # tracer saw the engine event; the original hook is back in place
    assert any(e.label == "finish" for e in tr.events)
    assert eng.trace_hook is original
    assert seen == []  # nothing leaked to the displaced hook while nested


def test_nested_tracers_restore_lifo():
    eng = Engine()
    outer = Tracer(eng)
    inner = Tracer(eng)
    assert eng.trace_hook is inner._hook
    inner.close()
    assert eng.trace_hook is outer._hook
    outer.close()
    assert eng.trace_hook is None


def test_close_is_idempotent_and_respects_foreign_hooks():
    eng = Engine()
    tr = Tracer(eng)

    def foreign(t, actor, label):
        pass

    eng.trace_hook = foreign  # someone replaced us after attach
    tr.close()
    assert eng.trace_hook is foreign  # not clobbered
    tr.close()  # second close: still a no-op
    assert eng.trace_hook is foreign


def test_tracer_and_obs_recorder_coexist():
    """The trace hook and the obs recorder are independent channels."""
    from repro.obs import ObsRecorder

    eng = Engine()
    rec = ObsRecorder(eng)
    with rec, Tracer(eng) as tr:

        def prog():
            sid = rec.begin("t", "work")
            yield Sleep(1.0)
            rec.end(sid)

        eng.spawn(prog(), name="w")
        eng.run()
        assert eng.obs is rec and eng.trace_hook is tr._hook
    assert eng.obs is None and eng.trace_hook is None
    assert any(e.label == "finish" for e in tr.events)
    assert [s.name for s in rec.spans] == ["work"]


def test_ring_buffer_eviction_via_engine_hook():
    """Engine-emitted events obey the same ring-buffer semantics as
    manual record() calls: oldest evicted, eviction counted."""
    eng = Engine()
    tr = Tracer(eng, limit=3)

    def prog(i):
        yield Sleep(float(i))

    for i in range(8):
        eng.spawn(prog(i), name=f"p{i}")
    eng.run()
    assert [e.actor for e in tr.events] == ["p5", "p6", "p7"]
    assert tr.dropped == 5


def test_ring_buffer_mixed_engine_and_manual_events():
    eng = Engine()
    tr = Tracer(eng, limit=4)

    def prog():
        tr.record("m", "manual-early")
        yield Sleep(1.0)

    for i in range(3):
        eng.spawn(prog(), name=f"p{i}")
    eng.run()
    tr.record("m", "manual-late")
    # 3 manual-early + 3 finish + 1 manual-late = 7 events, keep last 4
    labels = [(e.actor, e.label) for e in tr.events]
    assert labels == [
        ("p0", "finish"), ("p1", "finish"), ("p2", "finish"),
        ("m", "manual-late"),
    ]
    assert tr.dropped == 3
