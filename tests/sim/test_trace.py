"""Tests for the tracing facility."""

from repro.sim import Engine, Sleep
from repro.sim.trace import Tracer


def test_records_custom_marks_with_time():
    eng = Engine()
    tr = Tracer(eng)

    def prog():
        tr.record("p0", "phase-a")
        yield Sleep(1.0)
        tr.record("p0", "phase-b")

    eng.spawn(prog(), name="p0")
    eng.run()
    labels = [(e.time, e.label) for e in tr.for_actor("p0")]
    assert (0.0, "phase-a") in labels
    assert (1.0, "phase-b") in labels


def test_engine_finish_events_traced():
    eng = Engine()
    tr = Tracer(eng)

    def prog():
        yield Sleep(2.0)

    eng.spawn(prog(), name="worker")
    eng.run()
    assert any(e.label == "finish" and e.actor == "worker" for e in tr.events)


def test_spans_pairing():
    eng = Engine()
    tr = Tracer(eng)

    def prog():
        for _ in range(3):
            tr.record("p", "start")
            yield Sleep(0.5)
            tr.record("p", "end")
            yield Sleep(0.1)

    eng.spawn(prog(), name="p")
    eng.run()
    spans = tr.spans("p", "start", "end")
    assert len(spans) == 3
    for b, e in spans:
        assert e - b == 0.5 or abs(e - b - 0.5) < 1e-12


def test_limit_drops_excess():
    eng = Engine()
    tr = Tracer(eng, limit=5)
    for i in range(10):
        tr.record("x", f"m{i}")
    assert len(tr.events) == 5
    assert tr.dropped == 5


def test_to_text_and_close():
    eng = Engine()
    tr = Tracer(eng)
    tr.record("a", "hello")
    text = tr.to_text()
    assert "hello" in text and "a" in text
    tr.close()
    assert eng.trace_hook is None


def test_ring_buffer_keeps_newest_events():
    eng = Engine()
    tr = Tracer(eng, limit=3)
    for i in range(8):
        tr.record("x", f"m{i}")
    assert [e.label for e in tr.events] == ["m5", "m6", "m7"]
    assert tr.dropped == 5


def test_to_text_reports_dropped_count():
    eng = Engine()
    tr = Tracer(eng, limit=2)
    for i in range(5):
        tr.record("x", f"m{i}")
    text = tr.to_text()
    assert "3 older events dropped" in text
    assert "m4" in text and "m0" not in text
