"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    DeadlockError,
    Engine,
    Join,
    Sleep,
    Spawn,
)


def test_sleep_advances_time():
    eng = Engine()

    def prog():
        yield Sleep(1.5)
        yield Sleep(0.5)
        return "done"

    p = eng.spawn(prog())
    end = eng.run()
    assert end == pytest.approx(2.0)
    assert p.finished and p.result == "done"


def test_zero_sleep_is_legal():
    eng = Engine()

    def prog():
        yield Sleep(0.0)
        return eng.now

    p = eng.spawn(prog())
    eng.run()
    assert p.result == 0.0


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.schedule(-1.0, lambda: None)


def test_event_wakes_waiter_with_value():
    eng = Engine()
    ev = eng.event("x")
    got = []

    def waiter():
        v = yield ev
        got.append((eng.now, v))

    def setter():
        yield Sleep(3.0)
        ev.succeed(42)

    eng.spawn(waiter())
    eng.spawn(setter())
    eng.run()
    assert got == [(3.0, 42)]


def test_event_already_triggered_resumes_immediately():
    eng = Engine()
    ev = eng.event()
    ev.succeed("v")

    def waiter():
        v = yield ev
        return (eng.now, v)

    p = eng.spawn(waiter())
    eng.run()
    assert p.result == (0.0, "v")


def test_event_double_succeed_raises():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_multiple_waiters_all_wake():
    eng = Engine()
    ev = eng.event()
    results = []

    def waiter(i):
        v = yield ev
        results.append((i, v))

    for i in range(5):
        eng.spawn(waiter(i))

    def setter():
        yield Sleep(1.0)
        ev.succeed("go")

    eng.spawn(setter())
    eng.run()
    assert sorted(results) == [(i, "go") for i in range(5)]


def test_spawn_and_join_returns_child_result():
    eng = Engine()

    def child():
        yield Sleep(2.0)
        return 99

    def parent():
        h = yield Spawn(child())
        v = yield Join(h)
        return (eng.now, v)

    p = eng.spawn(parent())
    eng.run()
    assert p.result == (2.0, 99)


def test_join_already_finished_child():
    eng = Engine()

    def child():
        yield Sleep(0.1)
        return "c"

    def parent():
        h = yield Spawn(child())
        yield Sleep(5.0)
        v = yield Join(h)
        return v

    p = eng.spawn(parent())
    eng.run()
    assert p.result == "c"


def test_anyof_returns_first_index_and_value():
    eng = Engine()
    ev1, ev2 = eng.event(), eng.event()

    def waiter():
        idx, v = yield AnyOf([ev1, ev2])
        return (eng.now, idx, v)

    def setter():
        yield Sleep(1.0)
        ev2.succeed("b")
        yield Sleep(1.0)
        ev1.succeed("a")

    p = eng.spawn(waiter())
    eng.spawn(setter())
    eng.run()
    assert p.result == (1.0, 1, "b")


def test_allof_waits_for_all():
    eng = Engine()
    evs = [eng.event() for _ in range(3)]

    def waiter():
        vals = yield AllOf(evs)
        return (eng.now, vals)

    def setter():
        for i, ev in enumerate(evs):
            yield Sleep(1.0)
            ev.succeed(i * 10)

    p = eng.spawn(waiter())
    eng.spawn(setter())
    eng.run()
    assert p.result == (3.0, [0, 10, 20])


def test_allof_with_pretriggered_events():
    eng = Engine()
    evs = [eng.event() for _ in range(2)]
    evs[0].succeed("x")
    evs[1].succeed("y")

    def waiter():
        vals = yield AllOf(evs)
        return vals

    p = eng.spawn(waiter())
    eng.run()
    assert p.result == ["x", "y"]


def test_deadlock_detection():
    eng = Engine()
    ev = eng.event("never")

    def stuck():
        yield ev

    eng.spawn(stuck(), name="stuck-proc")
    with pytest.raises(DeadlockError, match="stuck-proc"):
        eng.run()


def test_run_until_stops_early():
    eng = Engine()

    def prog():
        yield Sleep(10.0)

    eng.spawn(prog())
    t = eng.run(until=4.0)
    assert t == 4.0
    # finish the rest
    t = eng.run()
    assert t == 10.0


def test_cancelled_callback_does_not_fire():
    eng = Engine()
    fired = []
    token = eng.schedule(1.0, lambda: fired.append(1))
    eng.cancel(token)
    eng.schedule(2.0, lambda: fired.append(2))
    eng.run()
    assert fired == [2]


def test_deterministic_same_time_ordering():
    eng = Engine()
    order = []
    for i in range(10):
        eng.schedule(1.0, lambda i=i: order.append(i))
    eng.run()
    assert order == list(range(10))


def test_exception_in_process_propagates():
    eng = Engine()

    def bad():
        yield Sleep(1.0)
        raise ValueError("boom")

    eng.spawn(bad())
    with pytest.raises(ValueError, match="boom"):
        eng.run()


def test_yield_from_composes_subroutines():
    eng = Engine()

    def sub(dt):
        yield Sleep(dt)
        return dt * 2

    def prog():
        a = yield from sub(1.0)
        b = yield from sub(2.0)
        return a + b

    p = eng.spawn(prog())
    eng.run()
    assert p.result == 6.0
    assert eng.now == 3.0


def test_unsupported_command_raises_typeerror():
    eng = Engine()

    def prog():
        yield "not-a-command"

    eng.spawn(prog())
    with pytest.raises(TypeError):
        eng.run()
