"""The progressive-fill memo: generations, persistence, digest contract.

The memo is a pure accelerator — every test here also pins the safety
property that a cold, warm, stale or corrupted memo never changes a
simulation result, only how fast it is produced.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.sim.fluid as fluid
from repro.sim.fluid import (
    clear_fill_memo,
    fill_memo_sizes,
    load_fill_memo,
    save_fill_memo,
)
from tests.sim.test_fluid_differential import make_schedule, run_schedule


@pytest.fixture(autouse=True)
def _isolated_memo():
    clear_fill_memo()
    yield
    # rotation rebinds the module globals, so restore by assignment
    fluid._FILL_MEMO = {}
    fluid._FILL_MEMO_OLD = {}


def _key(i: int) -> tuple:
    # shape of a real memo key: (caps, ((route, rate_cap, weight), ...))
    return (
        (100.0 + i, 200.0),
        (((0, 1), float("inf"), 1.0), ((1,), 50.0 + i, 2.0)),
    )


def _value(i: int) -> np.ndarray:
    return np.asarray([1.5 * i, 2.25 * i + 0.125], dtype=np.float64)


# -- generational rotation ----------------------------------------------------


def test_rotation_ages_the_current_generation(monkeypatch):
    monkeypatch.setattr(fluid, "_FILL_MEMO_MAX", 8)  # rotate at 4 entries
    for i in range(4):
        fluid._fill_memo_store(_key(i), _value(i))
    assert fill_memo_sizes() == (4, 0)
    fluid._fill_memo_store(_key(4), _value(4))  # triggers the rotation
    assert fill_memo_sizes() == (1, 4)
    # total footprint is bounded by _FILL_MEMO_MAX, never unbounded
    for i in range(5, 40):
        fluid._fill_memo_store(_key(i), _value(i))
        cur, old = fill_memo_sizes()
        assert cur + old <= 8


def test_old_generation_hits_are_promoted(monkeypatch):
    monkeypatch.setattr(fluid, "_FILL_MEMO_MAX", 8)
    for i in range(5):  # 5th store rotates: 0..3 become the old generation
        fluid._fill_memo_store(_key(i), _value(i))
    assert fill_memo_sizes() == (1, 4)
    got = fluid._fill_memo_get(_key(2))
    assert np.array_equal(got, _value(2))
    # the hit was promoted into the current generation (hot entries
    # never age out) and stays served from there
    assert fill_memo_sizes() == (2, 4)
    assert fluid._FILL_MEMO[_key(2)] is got


def test_miss_returns_none():
    assert fluid._fill_memo_get(_key(99)) is None


# -- persistence round trip ---------------------------------------------------


def test_save_load_round_trip(tmp_path):
    path = tmp_path / "memo.jsonl"
    for i in range(3):
        fluid._fill_memo_store(_key(i), _value(i))
    assert save_fill_memo(path) == 3
    clear_fill_memo()
    assert load_fill_memo(path) == 3
    # loaded entries land in the *previous* generation: served on demand
    # without charging the current generation's rotation budget
    assert fill_memo_sizes() == (0, 3)
    for i in range(3):
        got = fluid._fill_memo_get(_key(i))
        assert got is not None
        assert got.dtype == np.float64
        assert got.tolist() == _value(i).tolist()  # exact, bit-for-bit


def test_current_generation_wins_on_save(tmp_path):
    path = tmp_path / "memo.jsonl"
    fluid._FILL_MEMO_OLD[_key(0)] = _value(7)  # stale duplicate
    fluid._fill_memo_store(_key(0), _value(1))
    assert save_fill_memo(path) == 1
    clear_fill_memo()
    load_fill_memo(path)
    assert fluid._fill_memo_get(_key(0)).tolist() == _value(1).tolist()


def test_load_missing_file_is_a_clean_zero(tmp_path):
    assert load_fill_memo(tmp_path / "absent.jsonl") == 0
    assert fill_memo_sizes() == (0, 0)


def test_corrupt_lines_are_skipped_not_fatal(tmp_path):
    path = tmp_path / "memo.jsonl"
    for i in range(3):
        fluid._fill_memo_store(_key(i), _value(i))
    save_fill_memo(path)
    lines = path.read_text().splitlines()
    # tamper with one entry's rates: its digest no longer matches, so
    # load must drop it rather than poison bit-identity
    doc = json.loads(lines[3])  # line 0 is the schema header
    doc["v"][0] += 1.0
    lines[3] = json.dumps(doc)
    lines.append("not json at all {{{")
    lines.append(json.dumps({"k": [[1.0], []]}))  # missing v/d fields
    lines.append("")
    path.write_text("\n".join(lines) + "\n")
    clear_fill_memo()
    assert load_fill_memo(path) == 2  # header + 4 bad lines skipped
    assert fluid._fill_memo_get(_key(2)) is None  # the tampered entry
    # the untampered entries survived exactly
    for i in range(2):
        assert fluid._fill_memo_get(_key(i)).tolist() == _value(i).tolist()


def test_autoload_warms_from_env_and_arms_save_back(tmp_path, monkeypatch):
    path = tmp_path / "memo.jsonl"
    fluid._fill_memo_store(_key(0), _value(0))
    save_fill_memo(path)
    clear_fill_memo()
    registered: list = []
    monkeypatch.setattr(fluid.atexit, "register", registered.append)
    monkeypatch.setattr(fluid, "_fill_memo_autoloaded", False)
    monkeypatch.setenv("REPRO_FLUID_MEMO_PATH", str(path))
    fluid._fill_memo_autoload()
    assert fill_memo_sizes() == (0, 1)
    assert len(registered) == 1  # the atexit save-back hook
    # a second call is a no-op (one autoload per process)
    fluid._fill_memo_autoload()
    assert len(registered) == 1


# -- the safety property ------------------------------------------------------


def test_warm_memo_replay_is_bit_identical(monkeypatch):
    schedule = make_schedule(7)
    cold = run_schedule("incremental", schedule, memo=True,
                        monkeypatch=monkeypatch)
    cur, old = fill_memo_sizes()
    assert cur + old > 0  # the run actually populated the memo
    warm = run_schedule("incremental", schedule, memo=True,
                        monkeypatch=monkeypatch)
    assert warm == cold


def test_persisted_memo_replay_is_bit_identical(tmp_path, monkeypatch):
    """Cross-run persistence: a run warmed from a loaded snapshot (as
    REPRO_FLUID_MEMO_PATH arranges) reproduces the cold run exactly."""
    schedule = make_schedule(11)
    cold = run_schedule("incremental", schedule, memo=True,
                        monkeypatch=monkeypatch)
    path = tmp_path / "memo.jsonl"
    n = save_fill_memo(path)
    assert n > 0
    clear_fill_memo()
    assert load_fill_memo(path) == n
    warm = run_schedule("incremental", schedule, memo=True,
                        monkeypatch=monkeypatch)
    assert warm == cold
