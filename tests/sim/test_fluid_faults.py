"""Mid-flow capacity changes in the fluid solver (fault-injection API)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FluidSolver


def make():
    eng = Engine()
    net = FluidSolver(eng)
    return eng, net


def record(times, eng, key):
    def cb():
        times[key] = eng.now

    return cb


def test_mid_flow_degradation_is_piecewise_linear():
    # 100 B/s for 5 s (500 B done), then 25 B/s for the remaining 500 B.
    eng, net = make()
    r = net.add_resource(100.0)
    done = {}
    net.start_flow(1000.0, [r], record(done, eng, "f"))
    eng.schedule(5.0, lambda: net.scale_capacity(r, 0.25))
    eng.run()
    assert done["f"] == pytest.approx(5.0 + 500.0 / 25.0)


def test_mid_flow_speedup():
    eng, net = make()
    r = net.add_resource(50.0)
    done = {}
    net.start_flow(1000.0, [r], record(done, eng, "f"))
    eng.schedule(10.0, lambda: net.set_capacity(r, 250.0))  # 500 B left
    eng.run()
    assert done["f"] == pytest.approx(10.0 + 500.0 / 250.0)


def test_flap_stalls_and_resumes():
    # dead for [5, 15): the flow pauses with 500 B left and finishes late.
    eng, net = make()
    r = net.add_resource(100.0)
    done = {}
    net.start_flow(1000.0, [r], record(done, eng, "f"))
    eng.schedule(5.0, lambda: net.set_capacity(r, 0.0))
    eng.schedule(15.0, lambda: net.set_capacity(r, 100.0))
    eng.run()
    assert done["f"] == pytest.approx(20.0)


def test_flow_started_during_outage_waits_for_restore():
    eng, net = make()
    r = net.add_resource(100.0)
    done = {}
    net.set_capacity(r, 0.0)
    net.start_flow(300.0, [r], record(done, eng, "f"))
    eng.schedule(7.0, lambda: net.set_capacity(r, 100.0))
    eng.run()
    assert done["f"] == pytest.approx(10.0)


def test_fair_share_rebalances_when_one_route_dies():
    # two flows share r0; flow b also needs r1.  Killing r1 stalls b and
    # hands its share of r0 to a.
    eng, net = make()
    r0, r1 = net.add_resource(100.0), net.add_resource(100.0)
    done = {}
    net.start_flow(1000.0, [r0], record(done, eng, "a"))
    net.start_flow(1000.0, [r0, r1], record(done, eng, "b"))
    eng.schedule(2.0, lambda: net.set_capacity(r1, 0.0))
    eng.schedule(20.0, lambda: net.set_capacity(r1, 100.0))
    eng.run()
    # a: 100 B by t=2 at 50 B/s, then alone at 100 B/s -> t = 2 + 9 = 11
    assert done["a"] == pytest.approx(11.0)
    # b: 100 B by t=2, stalled until 20, then shares nothing -> 20 + 9
    assert done["b"] == pytest.approx(29.0)


def test_set_capacity_rejects_negative():
    _eng, net = make()
    r = net.add_resource(10.0)
    with pytest.raises(ValueError):
        net.set_capacity(r, -1.0)


def test_utilization_ignores_dead_resources():
    eng, net = make()
    r = net.add_resource(100.0)
    net.start_flow(1000.0, [r], lambda: None)
    eng.schedule(1.0, lambda: net.set_capacity(r, 0.0))
    eng.schedule(2.0, lambda: net.set_capacity(r, 100.0))
    eng.run()


@settings(deadline=None, max_examples=40)
@given(
    caps=st.lists(
        st.floats(min_value=10.0, max_value=1000.0), min_size=2, max_size=4
    ),
    sizes=st.lists(
        st.floats(min_value=100.0, max_value=5000.0), min_size=2, max_size=5
    ),
    gap=st.floats(min_value=0.1, max_value=30.0),
)
def test_flap_reconverges_to_max_min(caps, sizes, gap):
    """After a flap, surviving rates re-converge to the same max-min
    allocation an identical system that never flapped settles into.

    Every flow crosses every resource, so post-restore both systems hold
    the same flow set with (piecewise) identical remaining bytes; the
    flapped system must finish exactly ``gap`` seconds later.
    """
    def build(flap: bool):
        eng, net = make()
        rids = [net.add_resource(c) for c in caps]
        done = {}
        for i, s in enumerate(sizes):
            net.start_flow(s, rids, record(done, eng, i))
        if flap:
            # kill the bottleneck immediately: nothing transfers before
            # the window, so remaining bytes match the pristine system
            eng.schedule(0.0, lambda: net.set_capacity(rids[0], 0.0))
            eng.schedule(gap, lambda: net.set_capacity(rids[0], caps[0]))
        eng.run()
        return done, eng.now

    base, t_base = build(flap=False)
    flapped, t_flap = build(flap=True)
    assert t_flap == pytest.approx(t_base + gap, rel=1e-9)
    for k in base:
        assert flapped[k] == pytest.approx(base[k] + gap, rel=1e-9)
