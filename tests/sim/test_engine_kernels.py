"""Batched-vs-scalar engine kernel semantics and regression tests.

The batched kernel retires every entry due at one instant in a single
pass over the two-tier queue (side heap + sorted bulk arrays), while the
scalar kernel is the classic one-event-at-a-time heap loop kept as the
differential baseline.  These tests pin the semantics both kernels must
share:

- same-instant (priority, seq) total order, including entries scheduled
  *during* the batch being retired,
- ``schedule_at`` firing at the bit-exact requested instant (no
  ``now + delta`` round trip),
- lazy cancellation with threshold compaction (queue depth and slot
  table stay bounded under schedule-then-cancel churn),
- the drained ``run(until=T)`` path advancing ``now`` to exactly ``T``,
- the composite-wait callback sweeps (no dead-closure accumulation on
  long-lived events).

The differential section replays the fluid fuzz schedules under both
kernels and compares every observable — completion/abort instants,
sampled rates, accounting integrals — plus the engine counters
(``events``, ``batches``, final ``now``) bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.engine import (
    _COMPACT_MIN,
    _FLUSH_THRESHOLD,
    PRIORITY_LATE,
    AllOf,
    AnyOf,
    Engine,
    SimEvent,
)
from repro.sim.fluid import FluidSolver
from tests.sim.test_fluid_differential import make_schedule

KERNELS = ("batched", "scalar")


@pytest.fixture(params=KERNELS)
def kernel(request):
    return request.param


# -- kernel selection ----------------------------------------------------------


def test_default_kernel_is_batched():
    assert Engine().kernel == "batched"


def test_kernel_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_KERNEL", "scalar")
    assert Engine().kernel == "scalar"
    # an explicit constructor argument beats the environment
    assert Engine(kernel="batched").kernel == "batched"


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError, match="unknown engine kernel"):
        Engine(kernel="quantum")


# -- same-instant ordering ----------------------------------------------------


def test_same_instant_priority_then_seq_order(kernel):
    eng = Engine(kernel=kernel)
    order: list[str] = []
    eng.schedule_at(1.0, lambda: order.append("n0"))
    eng.schedule_at(1.0, lambda: order.append("late0"), priority=PRIORITY_LATE)
    eng.schedule_at(1.0, lambda: order.append("n1"))
    eng.schedule_at(1.0, lambda: order.append("late1"), priority=PRIORITY_LATE)
    eng.schedule_at(0.5, lambda: order.append("early"))
    eng.run()
    assert order == ["early", "n0", "n1", "late0", "late1"]


def test_mid_batch_scheduling_joins_the_batch(kernel):
    """Entries scheduled *during* a batch at the same instant keep the
    (priority, seq) total order: a fresh normal-priority entry still runs
    before a late-priority entry that was scheduled long before it."""
    eng = Engine(kernel=kernel)
    order: list[str] = []

    def first() -> None:
        order.append("first")
        eng.schedule(0.0, lambda: order.append("mid"))

    eng.schedule_at(2.0, first)
    eng.schedule_at(2.0, lambda: order.append("second"))
    eng.schedule_at(2.0, lambda: order.append("late"), priority=PRIORITY_LATE)
    eng.run()
    assert order == ["first", "second", "mid", "late"]


def test_batches_counts_distinct_instants(kernel):
    eng = Engine(kernel=kernel)
    for t in (1.0, 1.0, 1.0, 2.0, 2.0, 3.0):
        eng.schedule_at(t, lambda: None)
    eng.run()
    assert eng.events == 6
    assert eng.batches == 3


# -- schedule_at exactness ----------------------------------------------------


def test_schedule_at_fires_at_bit_exact_instant(kernel):
    # find a (now, when) pair where the naive now + (when - now) round
    # trip is off by an ulp; schedule_at must be immune to it
    a, b = next(
        (x, y)
        for x in (0.1, 0.2, 1 / 3, 0.7)
        for y in (0.9, 1.1, 1 / 7 + 1, 2.3)
        if x + (y - x) != y
    )
    eng = Engine(kernel=kernel)
    seen: list[float] = []

    def at_a() -> None:
        assert eng.now == a
        eng.schedule_at(b, lambda: seen.append(eng.now))

    eng.schedule_at(a, at_a)
    eng.run()
    assert seen == [b]  # exact ==, not approx


def test_schedule_at_current_instant_joins_current_batch(kernel):
    eng = Engine(kernel=kernel)
    order: list[str] = []

    def first() -> None:
        order.append("first")
        eng.schedule_at(1.0, lambda: order.append("same-instant"))

    eng.schedule_at(1.0, first)
    eng.run()
    assert order == ["first", "same-instant"]
    assert eng.now == 1.0


def test_schedule_at_past_rejected(kernel):
    eng = Engine(kernel=kernel)
    eng.schedule_at(1.0, lambda: eng.schedule_at(0.5, lambda: None))
    with pytest.raises(ValueError, match="in the past"):
        eng.run()


# -- run(until) drained path (regression: now must advance to T) -------------


def test_run_until_advances_now_when_queue_drains_early(kernel):
    eng = Engine(kernel=kernel)
    eng.schedule_at(1.0, lambda: None)
    assert eng.run(until=5.0) == 5.0
    assert eng.now == 5.0
    assert eng.events == 1


def test_run_until_on_empty_queue(kernel):
    eng = Engine(kernel=kernel)
    assert eng.run(until=3.0) == 3.0
    # an `until` in the past is a no-op, never a rewind
    assert eng.run(until=1.0) == 3.0
    assert eng.now == 3.0


def test_run_until_drained_with_blocked_process_is_not_deadlock(kernel):
    eng = Engine(kernel=kernel)
    never = eng.event("never")

    def prog():
        yield never

    eng.spawn(prog())
    # bounded run: the process is blocked forever, but with `until` that
    # is an observation window, not a deadlock
    assert eng.run(until=2.0) == 2.0
    assert eng.now == 2.0


# -- cancellation and compaction (regression: bounded queue) ------------------


def test_cancelled_callback_never_fires_and_clock_stays(kernel):
    eng = Engine(kernel=kernel)
    fired: list[str] = []
    tok = eng.schedule_at(1.0, lambda: fired.append("boom"))
    eng.cancel(tok)
    eng.cancel(tok)  # double cancel is a no-op
    eng.run()
    assert fired == []
    assert eng.events == 0
    assert eng.batches == 0
    # a drained queue of nothing but cancelled entries must not advance
    # the clock (matches the scalar kernel's skip-before-advance order)
    assert eng.now == 0.0


def test_stale_cancel_token_cannot_kill_a_recycled_slot(kernel):
    eng = Engine(kernel=kernel)
    fired: list[str] = []
    tok = eng.schedule_at(1.0, lambda: fired.append("a"))
    eng.run()
    assert fired == ["a"]
    eng.cancel(tok)  # entry already fired: no-op
    # the new entry typically reuses the freed slot; the stale token's
    # packed key no longer matches, so this cancel must not touch it
    eng.schedule_at(2.0, lambda: fired.append("b"))
    eng.cancel(tok)
    eng.run()
    assert fired == ["a", "b"]


def test_schedule_then_cancel_churn_stays_bounded(kernel):
    """A pure lazy-deletion heap grows without bound under this load;
    the compacting slot table must stay O(live entries)."""
    eng = Engine(kernel=kernel)
    live = [eng.schedule_at(1e9, lambda: None) for _ in range(8)]
    table_cap = len(eng._q_fn)
    peak = 0
    for _ in range(200):
        tokens = [eng.schedule_at(1e9, lambda: None) for _ in range(64)]
        for tok in tokens:
            eng.cancel(tok)
        peak = max(peak, eng.queue_depth)
    assert peak <= 8 + 2 * _COMPACT_MIN
    assert eng.queue_depth < 8 + _COMPACT_MIN
    assert len(eng._q_fn) == table_cap  # slot table never grew
    for tok in live:
        eng.cancel(tok)


def test_compaction_covers_the_bulk_tier():
    eng = Engine(kernel="batched")
    n = _FLUSH_THRESHOLD + 100
    fired: list[int] = []
    tokens = [
        eng.schedule_at(10.0 + i, lambda i=i: fired.append(i))
        for i in range(n)
    ]
    eng.run(until=1.0)  # first loop iteration flushes the side heap
    assert eng._sorted_t.size >= _FLUSH_THRESHOLD
    keep = 10
    for tok in tokens[keep:]:
        eng.cancel(tok)
    # compaction reclaimed the dead span instead of leaving n-10 zombies
    assert eng.queue_depth < keep + _COMPACT_MIN
    eng.run()
    assert fired == list(range(keep))
    assert eng.events == keep


def test_scalar_kernel_folds_back_a_batched_bulk_tier():
    """Kernels may be mixed on one engine: the scalar loop folds bulk-
    tier entries (left by an earlier batched run) back into its heap."""
    eng = Engine(kernel="batched")
    fired: list[float] = []
    n = _FLUSH_THRESHOLD + 10
    for i in range(n):
        eng.schedule_at(1.0 + (i % 7), lambda: fired.append(eng.now))
    eng.run(until=0.5)
    assert eng._sorted_t.size > 0
    eng.kernel = "scalar"
    eng._batched = False
    eng.run()
    assert len(fired) == n
    assert fired == sorted(fired)
    assert eng.now == 7.0


# -- composite waits ----------------------------------------------------------


def test_waitany_sweeps_losing_callbacks(kernel):
    """Regression: the losing events of an AnyOf must not retain the
    dead winner-selection closures (they capture the process and the
    whole event list)."""
    eng = Engine(kernel=kernel)
    evs = [eng.event(f"e{i}") for i in range(4)]

    def prog():
        got = yield AnyOf(evs)
        return got

    p = eng.spawn(prog())
    eng.schedule_at(1.0, lambda: evs[2].succeed("win"))
    eng.run()
    assert p.result == (2, "win")
    assert all(ev.callbacks == [] for ev in evs)


def test_waitany_no_accumulation_on_long_lived_events(kernel):
    eng = Engine(kernel=kernel)
    slow = eng.event("slow")

    def prog():
        for i in range(50):
            fast = eng.event(f"fast{i}")
            eng.schedule(0.0, lambda i=i, fast=fast: fast.succeed(i))
            idx, val = yield AnyOf([slow, fast])
            assert (idx, val) == (1, i)

    eng.spawn(prog())
    eng.run()
    assert slow.callbacks == []  # 50 rounds left zero dead closures


def test_waitall_with_already_triggered_events(kernel):
    eng = Engine(kernel=kernel)
    evs = [eng.event(f"e{i}") for i in range(3)]
    evs[0].succeed("a")
    evs[2].succeed("c")

    def prog():
        values = yield AllOf(evs)
        return values

    p = eng.spawn(prog())
    eng.schedule_at(1.0, lambda: evs[1].succeed("b"))
    eng.run()
    assert p.result == ["a", "b", "c"]


def test_waitall_all_pretriggered_resumes_at_current_time(kernel):
    eng = Engine(kernel=kernel)
    evs = [eng.event(f"e{i}") for i in range(3)]
    for i, ev in enumerate(evs):
        ev.succeed(i)

    def prog():
        values = yield AllOf(evs)
        return values

    p = eng.spawn(prog())
    eng.run()
    assert p.result == [0, 1, 2]
    assert eng.now == 0.0


def test_succeed_detaches_callbacks_before_firing(kernel):
    # callbacks appended *during* firing must not run in this round (the
    # pre-detach list was already snapshot) and must not linger after
    eng = Engine(kernel=kernel)
    ev = SimEvent(eng, "e")
    calls: list[str] = []

    def cb(_ev: SimEvent) -> None:
        calls.append("cb")
        ev.callbacks.append(lambda _e: calls.append("late-add"))

    ev.callbacks.append(cb)
    ev.succeed()
    assert calls == ["cb"]
    # the late addition landed on the fresh (detached) list and did not
    # fire in this round; the pre-fire list is gone
    assert len(ev.callbacks) == 1


# -- randomized kernel A/B on the raw engine ----------------------------------


def _replay(kernel: str, times, prios, cancels):
    eng = Engine(kernel=kernel)
    fired: list[tuple[float, int]] = []
    tokens = {}
    for i, (t, p) in enumerate(zip(times, prios)):
        def fn(i=i):
            fired.append((eng.now, i))
            if i % 7 == 0:  # mid-batch child at the same instant
                eng.schedule(0.0, lambda i=i: fired.append((eng.now, 1000 + i)))
        tokens[i] = eng.schedule_at(t, fn, priority=p)
    for i in cancels:
        eng.cancel(tokens[i])
    eng.run()
    return fired, eng.events, eng.batches, eng.now


@pytest.mark.parametrize("seed", range(20))
def test_kernel_ab_random_schedules(seed):
    rng = np.random.default_rng(seed)
    # first seeds cross the flush threshold (bulk tier + searchsorted
    # slices); the rest stay pure side-heap; heavy instant collisions
    # throughout, plus enough cancels to trip compaction
    n = _FLUSH_THRESHOLD + 500 if seed < 3 else 300
    times = rng.choice([0.0, 0.5, 1.0, 1.0, 1.0, 2.25, 4.0], size=n).tolist()
    prios = rng.integers(0, 2, size=n).tolist()
    cancels = sorted(rng.choice(n, size=n // 2, replace=False).tolist())
    assert _replay("batched", times, prios, cancels) == _replay(
        "scalar", times, prios, cancels
    )


# -- differential: the fluid fuzz schedules under both kernels ----------------


def _run_fluid(kernel: str, schedule):
    """The fuzz replay of test_fluid_differential, instrumented with the
    engine counters so kernel equivalence covers the execution *shape*
    (event count, batch count) and not just the observable timings."""
    caps, flows, cap_events, aborts, probes = schedule
    engine = Engine(kernel=kernel)
    solver = FluidSolver(engine, mode="incremental")
    rids = [solver.add_resource(c, name=f"r{i}") for i, c in enumerate(caps)]

    log: list = []
    fid_of: dict[int, int] = {}

    for i, (start, nbytes, route, rate_cap, weight) in enumerate(flows):
        def launch(i=i, nbytes=nbytes, route=route, rate_cap=rate_cap,
                   weight=weight):
            fid_of[i] = solver.start_flow(
                nbytes,
                route,
                lambda i=i: log.append(("done", i, engine.now)),
                rate_cap=rate_cap,
                weight=weight,
            )
        engine.schedule_at(start, launch)

    for t, rid, cap in cap_events:
        engine.schedule_at(
            t, lambda rid=rid, cap=cap: solver.set_capacity(rid, cap)
        )

    for t, i in aborts:
        def abort(i=i):
            fid = fid_of.get(i)
            if fid is not None:
                solver.abort_flow(fid)
                log.append(("abort", i, engine.now))
        engine.schedule_at(t, abort)

    for t in probes:
        def probe():
            solver.sync_accounting()
            log.append((
                "probe",
                engine.now,
                tuple(solver.flow_rate(fid_of.get(i, -1))
                      for i in range(len(flows))),
                tuple((solver.busy_time(r), solver.served_bytes(r))
                      for r in rids),
            ))
        engine.schedule_at(t, probe)

    engine.run()
    solver.sync_accounting()
    log.append((
        "final",
        engine.now,
        solver.active_flows,
        tuple((solver.busy_time(r), solver.served_bytes(r)) for r in rids),
    ))
    return log, engine.events, engine.batches, engine.now


@pytest.mark.parametrize("seed", range(225))
def test_kernels_bit_identical_on_fluid_schedules(seed):
    schedule = make_schedule(seed)
    assert _run_fluid("batched", schedule) == _run_fluid("scalar", schedule)
