"""TenantScheduler: contention is real, deterministic, and containable."""

import pytest

from repro.core.config import HanConfig
from repro.core.han import HanModule
from repro.hardware import tiny_cluster
from repro.mpi import MPIRuntime
from repro.obs.metrics import MetricsRegistry
from repro.tenancy import TenantScheduler, TenantWorkload, TrafficPlan, traffic_preset

KiB = 1024

CFG = HanConfig(fs=64 * KiB, imod="adapt", smod="sm", ibalg="chain", iralg="chain")


def _foreground(comm):
    han = HanModule(config=CFG)
    t0 = comm.runtime.engine.now
    yield from han.bcast(comm, 256 * KiB, root=0)
    return comm.runtime.engine.now - t0


def _run(plan, machine=None, metrics=None):
    machine = machine or tiny_cluster(num_nodes=2, ppn=2)
    runtime = MPIRuntime(machine)
    sched = TenantScheduler(runtime, plan, metrics=metrics)
    times = sched.run(_foreground)
    return max(times), sched


def test_two_tenant_contention_is_deterministic_and_slower():
    plan = traffic_preset("allreduce_sweep").with_seed(11)
    loaded1, s1 = _run(plan)
    loaded2, s2 = _run(plan)
    solo, _ = _run(TrafficPlan())
    assert loaded1 == loaded2  # bit-identical replay
    assert s1.stats == s2.stats
    assert loaded1 > solo  # contention must actually cost something
    assert loaded1 / solo > 1.0


def test_empty_plan_matches_plain_runtime():
    solo, _ = _run(TrafficPlan())
    machine = tiny_cluster(num_nodes=2, ppn=2)
    runtime = MPIRuntime(machine)
    plain = max(runtime.run(_foreground))
    assert solo == plain


def test_different_seeds_change_the_interference():
    plan = traffic_preset("allreduce_sweep")
    # jittered gaps shift tenant ops around the foreground window; at
    # least one of a handful of seeds must land differently
    times = {_run(plan.with_seed(s))[0] for s in (1, 2, 3, 4, 5)}
    assert len(times) >= 1  # all deterministic...
    solo, _ = _run(TrafficPlan())
    assert all(t >= solo for t in times)


def test_subset_ranks_tenant():
    # tenant confined to node 0 (world ranks 0,1 on a 2x2 machine):
    # foreground still slows because they share node 0's resources
    plan = TrafficPlan(seed=3).add(
        TenantWorkload(
            name="local",
            coll="allreduce",
            ranks=(0, 1),
            nbytes=1024 * KiB,
            gap=1e-5,
        )
    )
    loaded, sched = _run(plan)
    solo, _ = _run(TrafficPlan())
    assert loaded >= solo
    assert tuple(sched.stats) == ("local",)


def test_max_ops_tenant_finishes_on_its_own_and_counts():
    plan = TrafficPlan(seed=1).add(
        TenantWorkload(name="short", nbytes=4 * KiB, max_ops=2)
    )
    _, sched = _run(plan)
    st = sched.stats["short"]
    assert st["ops"] == 2
    assert st["bytes"] == 2 * 4 * KiB
    assert all(p.finished for p in sched._procs)


def test_metrics_counters_fold_in_at_stop():
    metrics = MetricsRegistry()
    plan = TrafficPlan(seed=1).add(
        TenantWorkload(name="short", nbytes=4 * KiB, max_ops=2)
    )
    _run(plan, metrics=metrics)
    assert metrics.counter("tenant_ops_total", tenant="short").value == 2
    assert metrics.counter("tenant_bytes_total", tenant="short").value == 2 * 4 * KiB


def test_launch_and_stop_are_idempotent():
    machine = tiny_cluster(num_nodes=2, ppn=2)
    runtime = MPIRuntime(machine)
    plan = traffic_preset("allreduce_sweep").with_seed(7)
    sched = TenantScheduler(runtime, plan)
    procs = sched.launch()
    assert sched.launch() is procs  # second launch is a no-op
    assert len(procs) == sum(
        len(t.ranks) if t.ranks else machine.num_nodes * machine.ppn
        for t in plan.tenants
    )
    times = sched.run(_foreground)  # run() must not double-spawn tenants
    assert len(times) == machine.num_nodes * machine.ppn
    sched.stop()  # second stop is a no-op
    assert all(p.finished for p in procs)


def test_tenant_jobs_do_not_cross_match_foreground_messages():
    # a bcast foreground against a bcast tenant of the same size: if tag
    # spaces leaked across communicators this would misdeliver or hang
    plan = TrafficPlan(seed=2).add(
        TenantWorkload(name="bg-bcast", coll="bcast", nbytes=256 * KiB, gap=0.0)
    )
    loaded1, _ = _run(plan)
    loaded2, _ = _run(plan)
    assert loaded1 == loaded2
    assert loaded1 > 0


def test_sweep_cycles_sizes_in_order():
    plan = TrafficPlan(seed=0).add(
        TenantWorkload(
            name="sweep",
            pattern="sweep",
            sizes=(1 * KiB, 2 * KiB),
            max_ops=4,
        )
    )
    _, sched = _run(plan)
    st = sched.stats["sweep"]
    assert st["ops"] == 4
    assert st["bytes"] == 2 * (1 * KiB + 2 * KiB)


def test_bursty_tenant_counts_burst_ops():
    plan = TrafficPlan(seed=0).add(
        TenantWorkload(
            name="burst",
            pattern="bursty",
            burst=3,
            nbytes=1 * KiB,
            max_ops=3,
        )
    )
    _, sched = _run(plan)
    assert sched.stats["burst"]["ops"] == 3
