"""TrafficPlan / TenantWorkload: validation, entropy, JSON round-trip."""

import numpy as np
import pytest

from repro.core.config import HanConfig
from repro.tenancy import (
    PATTERNS,
    TRAFFIC_PRESETS,
    TenantWorkload,
    TrafficPlan,
    traffic_preset,
)
from repro.util.entropy import entropy_children

KiB = 1024


# -- TenantWorkload validation --------------------------------------------------


def test_defaults_are_a_valid_periodic_tenant():
    t = TenantWorkload(name="bg")
    assert t.pattern == "periodic"
    assert t.size_cycle() == (t.nbytes,)


def test_sweep_requires_sizes():
    with pytest.raises(ValueError, match="at least two sizes"):
        TenantWorkload(name="bg", pattern="sweep")
    with pytest.raises(ValueError, match="at least two sizes"):
        TenantWorkload(name="bg", pattern="sweep", sizes=(64 * KiB,))
    t = TenantWorkload(name="bg", pattern="sweep", sizes=(64 * KiB, 1 * KiB))
    assert t.size_cycle() == (64 * KiB, 1 * KiB)


def test_sizes_rejected_outside_sweep():
    with pytest.raises(ValueError, match="sweep"):
        TenantWorkload(name="bg", pattern="periodic", sizes=(1.0, 2.0))


def test_bursty_requires_burst():
    with pytest.raises(ValueError, match="burst >= 2"):
        TenantWorkload(name="bg", pattern="bursty")
    with pytest.raises(ValueError, match="bursty"):
        TenantWorkload(name="bg", pattern="periodic", burst=3)
    assert TenantWorkload(name="bg", pattern="bursty", burst=2).burst == 2


def test_negative_and_nonpositive_fields_rejected():
    with pytest.raises(ValueError, match="gap and jitter"):
        TenantWorkload(name="bg", gap=-1.0)
    with pytest.raises(ValueError, match="gap and jitter"):
        TenantWorkload(name="bg", jitter=-0.1)
    with pytest.raises(ValueError, match="nbytes"):
        TenantWorkload(name="bg", nbytes=0)
    with pytest.raises(ValueError, match="positive"):
        TenantWorkload(name="bg", pattern="sweep", sizes=(1.0, 0.0))
    with pytest.raises(ValueError, match="max_ops"):
        TenantWorkload(name="bg", max_ops=-1)


def test_unknown_pattern_rejected():
    with pytest.raises(ValueError, match="pattern"):
        TenantWorkload(name="bg", pattern="chaotic")


# -- TrafficPlan semantics ------------------------------------------------------


def test_add_is_functional_and_rejects_duplicates():
    base = TrafficPlan()
    p = base.add(TenantWorkload(name="a"), TenantWorkload(name="b"))
    assert base.tenants == ()
    assert [t.name for t in p.tenants] == ["a", "b"]
    with pytest.raises(ValueError, match="duplicate"):
        p.add(TenantWorkload(name="a"))


def test_seed_trial_realization_helpers():
    p = TrafficPlan(seed=None, trial=0).add(TenantWorkload(name="a"))
    assert p.resolve_seed(7).seed == 7
    assert p.with_seed(3).resolve_seed(7).seed == 3
    assert p.resolve_seed(None).seed is None
    assert p.for_trial(2).trial == 2
    # realization helpers never touch the tenant list
    assert p.for_trial(2).tenants == p.tenants


def test_tenant_children_follow_shared_entropy_tree():
    p = TrafficPlan(seed=42, trial=3).add(
        TenantWorkload(name="a"), TenantWorkload(name="b")
    )
    ours = p.tenant_children()
    raw = entropy_children(42, 2, trial=3)
    for c, r in zip(ours, raw):
        assert np.random.PCG64(c).state == np.random.PCG64(r).state


def test_different_trials_are_different_realizations():
    p = TrafficPlan(seed=42).add(TenantWorkload(name="a"))
    g0 = np.random.Generator(np.random.PCG64(p.for_trial(0).tenant_children()[0]))
    g1 = np.random.Generator(np.random.PCG64(p.for_trial(1).tenant_children()[0]))
    assert g0.random(4).tolist() != g1.random(4).tolist()


def test_describe_mentions_tenants():
    assert "none" in TrafficPlan().describe()
    p = TrafficPlan(seed=1).add(TenantWorkload(name="bg", coll="bcast"))
    assert "bg:bcast/periodic" in p.describe()


# -- JSON round-trip ------------------------------------------------------------


def test_to_doc_from_doc_round_trip():
    p = TrafficPlan(seed=5, trial=2).add(
        TenantWorkload(
            name="sweep",
            coll="allreduce",
            pattern="sweep",
            sizes=(64 * KiB, 256 * KiB),
            gap=1e-5,
            jitter=0.5,
            ranks=(0, 1),
            config=HanConfig(fs=64 * KiB, imod="adapt", smod="sm",
                             ibalg="chain", iralg="chain"),
        ),
        TenantWorkload(name="burst", pattern="bursty", burst=3, max_ops=9),
    )
    back = TrafficPlan.from_doc(p.to_doc())
    assert back == p
    # docs are plain JSON types end to end
    import json

    assert TrafficPlan.from_doc(json.loads(json.dumps(p.to_doc()))) == p


def test_from_doc_tolerates_minimal_doc():
    p = TrafficPlan.from_doc({"tenants": [{"name": "bg"}]})
    assert p.seed is None and p.trial == 0
    assert p.tenants[0].coll == "allreduce"


# -- presets --------------------------------------------------------------------


def test_presets_build_and_validate():
    for name in TRAFFIC_PRESETS:
        p = traffic_preset(name)
        assert p.tenants, name
        for t in p.tenants:
            assert t.pattern in PATTERNS


def test_unknown_preset_raises():
    with pytest.raises(ValueError, match="nope"):
        traffic_preset("nope")
