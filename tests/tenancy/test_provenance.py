"""Downstream provenance: serve-store decisions and the interference insight."""

from repro.core.config import HanConfig
from repro.hardware import tiny_cluster
from repro.obs.insights import INTERFERENCE_THRESHOLD, interference_insight
from repro.serve.store import DecisionStore, decision_record
from repro.tenancy import traffic_preset
from repro.tenancy.scheduler import measure_interference
from repro.tuning import Autotuner, SearchSpace
from repro.tuning.measure import resolve_traffic

KiB = 1024


def _machine():
    return tiny_cluster(num_nodes=2, ppn=2)


def _config():
    return HanConfig(fs=64 * KiB, imod="adapt", smod="sm",
                     ibalg="chain", iralg="chain")


def _traffic():
    return resolve_traffic(
        traffic_preset("allreduce_sweep").with_seed(11), _config()
    )


# -- serve store --------------------------------------------------------------------


def test_decision_record_carries_traffic_digest():
    quiet = decision_record(_machine(), "bcast", 256 * KiB, _config())
    loaded = decision_record(
        _machine(), "bcast", 256 * KiB, _config(), traffic=_traffic()
    )
    assert quiet["traffic_digest"] is None
    assert loaded["traffic_digest"]
    # same point key — traffic is provenance, not identity: the serving
    # index answers "what should this job shape use", latest-wins
    assert quiet["key"] == loaded["key"]
    other = decision_record(
        _machine(), "bcast", 256 * KiB, _config(),
        traffic=_traffic().with_seed(99),
    )
    assert other["traffic_digest"] != loaded["traffic_digest"]


def test_put_report_stamps_traffic(tmp_path):
    space = SearchSpace(
        seg_sizes=(None, 64 * KiB),
        messages=(64 * KiB,),
        adapt_algorithms=("chain",),
        inner_segs=(None,),
    )
    plan = traffic_preset("allreduce_sweep").with_seed(11)
    report = Autotuner(
        machine=_machine(), space=space, trials=2,
        traffic_plan=plan, allocation="bandit",
    ).tune(colls=("bcast",), method="exhaustive")
    store = DecisionStore(tmp_path / "decisions")
    n = store.put_report(
        _machine(), report, traffic=resolve_traffic(plan, _config())
    )
    assert n == len(report.table.entries)
    band = store.bands()[0]
    for rec in store.records(band, "bcast"):
        assert rec["traffic_digest"]


# -- the interference insight -------------------------------------------------------


def test_interference_insight_passes_normal_contention():
    out = measure_interference(
        _machine(), "bcast", 256 * KiB, _config(), _traffic()
    )
    ins = interference_insight(out)
    assert ins.passed
    assert ins.kind == "interference"
    assert ins.data["slowdown"] == out["slowdown"]
    assert "bcast" in ins.name


def test_interference_insight_flags_pathological_slowdown():
    report = {
        "coll": "bcast",
        "slowdown": INTERFERENCE_THRESHOLD + 1.0,
        "solo_time": 1.0,
        "loaded_time": INTERFERENCE_THRESHOLD + 1.0,
        "traffic": "TrafficPlan(...)",
    }
    ins = interference_insight(report)
    assert not ins.passed
    assert "slows" in ins.detail


def test_interference_insight_flags_unphysical_speedup():
    report = {"coll": "bcast", "slowdown": 0.8,
              "solo_time": 1.0, "loaded_time": 0.8}
    ins = interference_insight(report)
    assert not ins.passed
    assert "broken" in ins.detail
