"""Interference-aware measurement: traffic plans in the digest contract."""

from repro.core.config import HanConfig
from repro.hardware import tiny_cluster
from repro.obs.store import RunStore, summarize_measurement
from repro.tenancy import TenantWorkload, TrafficPlan, traffic_preset
from repro.tenancy.scheduler import measure_interference
from repro.tuning import MeasurementCache, measure_collective, measurement_key
from repro.tuning.measure import resolve_traffic
from repro.tuning.parallel import MeasurePoint, run_cached

KiB = 1024


def _machine():
    return tiny_cluster(num_nodes=2, ppn=2)


def _config(**kw):
    kw.setdefault("fs", 64 * KiB)
    kw.setdefault("imod", "adapt")
    kw.setdefault("smod", "sm")
    kw.setdefault("ibalg", "chain")
    kw.setdefault("iralg", "chain")
    return HanConfig(**kw)


def _plan():
    return traffic_preset("allreduce_sweep").with_seed(11)


def _key(traffic=None, trial_offset=0, cfg=None):
    cfg = cfg or _config()
    return measurement_key(
        _machine(), "bcast", 256 * KiB, cfg, 0, 1, None,
        None, 1, trial_offset, "median",
        traffic=resolve_traffic(traffic, cfg),
    )


# -- measurement under load ---------------------------------------------------------


def test_loaded_measurement_is_slower_and_deterministic():
    quiet = measure_collective(_machine(), "bcast", 256 * KiB, _config())
    loaded1 = measure_collective(
        _machine(), "bcast", 256 * KiB, _config(), traffic_plan=_plan()
    )
    loaded2 = measure_collective(
        _machine(), "bcast", 256 * KiB, _config(), traffic_plan=_plan()
    )
    assert loaded1.time > quiet.time
    assert loaded1 == loaded2  # bit-identical replay


def test_empty_plan_is_bit_identical_to_no_plan():
    quiet = measure_collective(_machine(), "bcast", 256 * KiB, _config())
    empty = measure_collective(
        _machine(), "bcast", 256 * KiB, _config(), traffic_plan=TrafficPlan(seed=3)
    )
    assert empty == quiet


def test_traffic_seed_resolves_from_config_seed():
    plan = traffic_preset("allreduce_sweep")  # seed=None
    a = measure_collective(
        _machine(), "bcast", 256 * KiB, _config(seed=11), traffic_plan=plan
    )
    b = measure_collective(
        _machine(), "bcast", 256 * KiB, _config(seed=11), traffic_plan=_plan()
    )
    assert a.time == b.time


def test_trials_see_independent_traffic_realizations():
    meas = measure_collective(
        _machine(), "bcast", 256 * KiB, _config(),
        traffic_plan=_plan(), trials=3,
    )
    again = measure_collective(
        _machine(), "bcast", 256 * KiB, _config(),
        traffic_plan=_plan(), trials=3,
    )
    assert meas.trial_times == again.trial_times
    # jittered tenant gaps differ per realization, so the trials must
    # not all collapse to one value
    assert len(set(meas.trial_times)) > 1


# -- digest contract ----------------------------------------------------------------


def test_traffic_enters_measurement_key_only_when_active():
    assert _key(traffic=_plan()) != _key()
    assert _key(traffic=TrafficPlan(seed=3)) == _key()  # tenant-less = quiet
    assert _key(traffic=_plan().with_seed(12)) != _key(traffic=_plan())
    assert _key(traffic=_plan(), trial_offset=1) != _key(traffic=_plan())
    assert _key(trial_offset=1) == _key()  # quiet: trial bookkeeping free


def test_config_seed_enters_key_only_via_resolved_traffic():
    plan = traffic_preset("allreduce_sweep")  # seed resolves from config
    assert _key(cfg=_config(seed=1)) == _key(cfg=_config(seed=2))
    assert _key(traffic=plan, cfg=_config(seed=1)) != _key(
        traffic=plan, cfg=_config(seed=2)
    )


def test_cache_never_aliases_loaded_and_quiet(tmp_path):
    cache = MeasurementCache(tmp_path)
    quiet = measure_collective(
        _machine(), "bcast", 256 * KiB, _config(), cache=cache
    )
    loaded = measure_collective(
        _machine(), "bcast", 256 * KiB, _config(), cache=cache,
        traffic_plan=_plan(),
    )
    assert cache.stats()["misses"] == 2  # distinct entries
    warm = measure_collective(
        _machine(), "bcast", 256 * KiB, _config(), cache=cache,
        traffic_plan=_plan(),
    )
    assert cache.stats()["hits"] == 1
    assert warm == loaded
    assert warm.time != quiet.time


def test_measure_point_carries_traffic(tmp_path):
    cache = MeasurementCache(tmp_path)
    points = [
        MeasurePoint(_machine(), "bcast", 256 * KiB, _config()),
        MeasurePoint(_machine(), "bcast", 256 * KiB, _config(),
                     traffic_plan=_plan()),
    ]
    assert points[0].cache_key() != points[1].cache_key()
    quiet, loaded = run_cached(points, cache=cache)
    assert loaded.time > quiet.time
    # keys hit the same entries measure_collective would write
    direct = measure_collective(
        _machine(), "bcast", 256 * KiB, _config(), cache=cache,
        traffic_plan=_plan(),
    )
    assert cache.stats()["hits"] == 1
    assert direct == loaded


# -- run-store provenance -----------------------------------------------------------


def test_store_separates_loaded_runs(tmp_path):
    store = RunStore(tmp_path / "store")
    quiet = measure_collective(
        _machine(), "bcast", 256 * KiB, _config(), store=store
    )
    loaded = measure_collective(
        _machine(), "bcast", 256 * KiB, _config(), store=store,
        traffic_plan=_plan(),
    )
    lines = [run for _, runs in store.groups() for run in runs]
    assert len(lines) == 2
    by_loaded = {bool(ln["loaded"]): ln for ln in lines}
    assert by_loaded[True]["key"] != by_loaded[False]["key"]
    assert by_loaded[True]["traffic_digest"]
    assert by_loaded[False]["traffic_digest"] is None
    assert by_loaded[True]["time"] == loaded.time
    assert by_loaded[False]["time"] == quiet.time


def test_summarize_measurement_traffic_digest_is_stable():
    meas = measure_collective(_machine(), "bcast", 256 * KiB, _config())
    plan = resolve_traffic(_plan(), _config())
    a = summarize_measurement(_machine(), meas, traffic=plan)
    b = summarize_measurement(_machine(), meas, traffic=plan)
    assert a["traffic_digest"] == b["traffic_digest"]
    other = summarize_measurement(
        _machine(), meas, traffic=plan.with_seed(99)
    )
    assert other["traffic_digest"] != a["traffic_digest"]


# -- the smoke helper ---------------------------------------------------------------


def test_measure_interference_reports_slowdown():
    out = measure_interference(
        _machine(), "bcast", 256 * KiB, _config(), _plan()
    )
    assert out["slowdown"] > 1.0
    assert out["loaded_time"] > out["solo_time"]
    again = measure_interference(
        _machine(), "bcast", 256 * KiB, _config(), _plan()
    )
    assert out == again
