"""Golden-trace regression: exact completion times of every collective.

The simulator is deterministic, so the golden file pins *bit-exact*
times.  A failure means the timing model changed: if intentional, run
``python scripts/regen_golden.py`` and commit the updated file; if not,
the diff below is the regression.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
GOLDEN = Path(__file__).resolve().parent / "collectives.json"


def _load_regen():
    spec = importlib.util.spec_from_file_location(
        "regen_golden", ROOT / "scripts" / "regen_golden.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _diff_lines(want: dict, got: dict) -> list[str]:
    lines = []
    for key in sorted(set(want) | set(got)):
        w, g = want.get(key), got.get(key)
        if w == g:
            continue
        if w is None:
            lines.append(f"  {key}: NEW (no golden entry) got={g}")
        elif g is None:
            lines.append(f"  {key}: MISSING (golden expects {w})")
        else:
            for field in sorted(set(w) | set(g)):
                wv, gv = w.get(field), g.get(field)
                if wv == gv:
                    continue
                rel = (
                    f"{(gv - wv) / wv:+.3%}"
                    if isinstance(wv, float) and wv
                    else "n/a"
                )
                lines.append(
                    f"  {key}.{field}: expected {wv!r}, got {gv!r} ({rel})"
                )
    return lines


def _golden_suites():
    if not GOLDEN.exists():
        pytest.fail(
            f"golden file missing: {GOLDEN}\n"
            "generate it with: python scripts/regen_golden.py"
        )
    return sorted(json.loads(GOLDEN.read_text())["suites"])


@pytest.mark.parametrize("suite", ["shaheen2", "gpu_pod"])
def test_collective_times_match_golden(suite):
    if not GOLDEN.exists():
        pytest.fail(
            f"golden file missing: {GOLDEN}\n"
            "generate it with: python scripts/regen_golden.py"
        )
    golden_doc = json.loads(GOLDEN.read_text())
    assert suite in golden_doc["suites"], (
        f"golden file has no {suite!r} suite; regenerate with "
        "scripts/regen_golden.py"
    )
    golden = golden_doc["suites"][suite]
    current = _load_regen().compute_golden()["suites"][suite]

    assert current["machine"] == golden["machine"], (
        "golden machine geometry changed; regenerate with "
        "scripts/regen_golden.py"
    )
    assert current["config"] == golden["config"]

    diff = _diff_lines(golden["traces"], current["traces"])
    if diff:
        pytest.fail(
            f"[{suite}] collective completion times diverged from "
            "tests/golden/collectives.json:\n"
            + "\n".join(diff)
            + "\n\nIf this change is intentional, regenerate the golden "
            "file:\n    python scripts/regen_golden.py"
        )


def test_golden_file_covers_every_suite():
    """New suites in the regen script must be frozen (and parametrized)."""
    current = sorted(_load_regen()._suites())
    assert current == _golden_suites() == ["gpu_pod", "shaheen2"]
