"""Smoke tests for the experiment drivers (cheap ones run end-to-end)."""

import json

import pytest

import repro.experiments.common as common
from repro.experiments import EXPERIMENTS
from repro.experiments.common import (
    bcast_sweep_sizes,
    fmt_bytes,
    geometry,
    save_result,
)


def test_experiment_registry_importable():
    import importlib

    for name in EXPERIMENTS:
        mod = importlib.import_module(f"repro.experiments.{name}")
        assert callable(mod.run)


def test_geometry_scales():
    m = geometry("shaheen2", "paper")
    assert m.num_ranks == 4096
    m = geometry("stampede2", "paper")
    assert m.num_ranks == 1536
    small = geometry("shaheen2", "small")
    assert small.num_ranks < 128
    with pytest.raises(ValueError):
        geometry("summit", "small")


def test_bcast_sweep_ranges():
    small, large = bcast_sweep_sizes("small")
    assert small[0] == 64 and small[-1] == 128 * 1024
    assert large[0] == 256 * 1024
    _small_p, large_p = bcast_sweep_sizes("paper")
    assert large_p[-1] == 128 * 1024 * 1024  # the paper's 128MB ceiling


def test_fmt_bytes():
    assert fmt_bytes(512) == "512B"
    assert fmt_bytes(4096) == "4KB"
    assert fmt_bytes(4 * 1024 * 1024) == "4MB"


def test_save_result_writes_json(tmp_path, monkeypatch):
    monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
    path = save_result("unit_test", {"x": 1})
    doc = json.loads(path.read_text())
    assert doc["x"] == 1
    assert "_generated" in doc


def test_fig11_runs_end_to_end(tmp_path, monkeypatch):
    monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
    from repro.experiments import fig11

    out = fig11.run(save=True)
    assert (tmp_path / "fig11_netpipe.json").exists()
    mid = [r for r in out["rows"] if 16 * 1024 <= r["size"] <= 512 * 1024]
    assert all(r["cray_over_openmpi"] > 1.2 for r in mid)


def test_fig03_runs_end_to_end(tmp_path, monkeypatch):
    monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
    from repro.experiments import fig03

    out = fig03.run(save=True)
    for label, pct in out["tail_spread_pct"].items():
        assert pct < 25.0, label


def test_main_wrapper_wires_traffic_and_allocation(monkeypatch, capsys):
    from repro.tenancy import TrafficPlan

    seen = {}

    def run_fn(scale="small", save=True, traffic_plan=None,
               allocation="fixed"):
        """stub experiment"""
        seen.update(scale=scale, save=save, traffic_plan=traffic_plan,
                    allocation=allocation)

    monkeypatch.setattr(
        "sys.argv",
        ["prog", "--no-save", "--traffic-plan", "allreduce_sweep",
         "--traffic-seed", "11", "--allocation", "bandit"],
    )
    common.main_wrapper(run_fn)
    assert isinstance(seen["traffic_plan"], TrafficPlan)
    assert seen["traffic_plan"].seed == 11
    assert seen["allocation"] == "bandit"
    assert seen["save"] is False


def test_main_wrapper_traffic_defaults_to_none(monkeypatch, capsys):
    seen = {}

    def run_fn(scale="small", save=True, traffic_plan=None,
               allocation="fixed"):
        """stub experiment"""
        seen.update(traffic_plan=traffic_plan, allocation=allocation)

    monkeypatch.setattr("sys.argv", ["prog", "--no-save"])
    common.main_wrapper(run_fn)
    assert seen["traffic_plan"] is None
    assert seen["allocation"] == "fixed"


def test_tuned_decision_caches(tmp_path, monkeypatch):
    monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
    from repro.tuning import SearchSpace

    machine = geometry("shaheen2", "small").scaled(num_nodes=2, ppn=2)
    space = SearchSpace(
        seg_sizes=(256 * 1024,),
        messages=(1024 * 1024,),
        adapt_algorithms=("binary",),
        inner_segs=(None,),
    )
    fn1 = common.tuned_decision(machine, colls=("bcast",), space=space,
                                cache_key="t1")
    assert (tmp_path / "t1.json").exists()
    fn2 = common.tuned_decision(machine, colls=("bcast",), cache_key="t1")
    cfg1 = fn1(2, 2, 1024 * 1024, "bcast")
    cfg2 = fn2(2, 2, 1024 * 1024, "bcast")
    assert cfg1 == cfg2
