"""Tests for P2P profiles, progress servers and the fabric."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import shaheen2, tiny_cluster
from repro.netsim import (
    Fabric,
    P2PProfile,
    ProgressServer,
    craympi_profile,
    intelmpi_profile,
    mvapich2_profile,
    openmpi_profile,
)
from repro.sim import Engine

ALL_PROFILES = [
    openmpi_profile,
    craympi_profile,
    intelmpi_profile,
    mvapich2_profile,
]


class TestProfiles:
    @pytest.mark.parametrize("make", ALL_PROFILES)
    def test_fraction_bounded(self, make):
        prof = make()
        for nbytes in (1, 100, 4096, 2**20, 2**28):
            f = prof.bw_fraction(nbytes)
            assert 0 < f <= 1.0

    @pytest.mark.parametrize("make", ALL_PROFILES)
    def test_curve_endpoints_clamped(self, make):
        prof = make()
        lo_size, lo_frac = prof.bw_curve[0]
        hi_size, hi_frac = prof.bw_curve[-1]
        assert prof.bw_fraction(lo_size / 10) == lo_frac
        assert prof.bw_fraction(hi_size * 10) == hi_frac

    @settings(max_examples=50, deadline=None)
    @given(nbytes=st.floats(1, 2**30))
    def test_property_interpolation_within_neighbor_bounds(self, nbytes):
        prof = openmpi_profile()
        f = prof.bw_fraction(nbytes)
        fracs = [fr for _s, fr in prof.bw_curve]
        assert min(fracs) <= f <= max(fracs)

    def test_openmpi_has_the_midrange_dip(self):
        """The Fig 11 mechanism: a dip around 16KB..512KB."""
        prof = openmpi_profile()
        assert prof.bw_fraction(64 * 1024) < prof.bw_fraction(512) * 0.7
        assert prof.bw_fraction(16 * 2**20) > 0.9

    def test_cray_flatter_than_openmpi(self):
        omp, cray = openmpi_profile(), craympi_profile()
        assert cray.bw_fraction(64 * 1024) > omp.bw_fraction(64 * 1024) * 1.5
        assert abs(cray.bw_fraction(16 * 2**20) - omp.bw_fraction(16 * 2**20)) < 0.1

    def test_eager_adds_copy_overhead(self):
        prof = openmpi_profile()
        small = prof.eager_threshold
        assert prof.send_overhead(small) > prof.o_send
        assert prof.send_overhead(small * 2) == prof.o_send  # rendezvous

    def test_invalid_curves_rejected(self):
        with pytest.raises(ValueError):
            P2PProfile("x", 8192, 1e-6, 1e-6, 1e-7, 1e9,
                       bw_curve=((1024, 0.5), (512, 0.6)))  # unsorted
        with pytest.raises(ValueError):
            P2PProfile("x", 8192, 1e-6, 1e-6, 1e-7, 1e9,
                       bw_curve=((1024, 1.5),))  # fraction > 1
        with pytest.raises(ValueError):
            P2PProfile("x", -1, 1e-6, 1e-6, 1e-7, 1e9,
                       bw_curve=((1024, 0.5),))


class TestProgressServer:
    def test_fifo_serialization(self):
        eng = Engine()
        srv = ProgressServer(eng, "t")
        done = []
        ev1 = srv.request(1.0)
        ev2 = srv.request(2.0)
        ev1.callbacks.append(lambda _e: done.append(("a", eng.now)))
        ev2.callbacks.append(lambda _e: done.append(("b", eng.now)))
        eng.run()
        assert done == [("a", 1.0), ("b", 3.0)]

    def test_idle_gap_not_charged(self):
        eng = Engine()
        srv = ProgressServer(eng, "t")
        srv.request(1.0)
        fired = {}

        def late_request():
            ev = srv.request(1.0)
            ev.callbacks.append(lambda _e: fired.setdefault("t", eng.now))

        eng.schedule(5.0, late_request)
        eng.run()
        assert fired["t"] == 6.0  # starts at request time, not busy_until

    def test_negative_duration_rejected(self):
        eng = Engine()
        srv = ProgressServer(eng, "t")
        with pytest.raises(ValueError):
            srv.request(-1.0)

    def test_accounting(self):
        eng = Engine()
        srv = ProgressServer(eng, "t")
        srv.request(1.0)
        srv.request(0.5)
        eng.run()
        assert srv.busy_time == pytest.approx(1.5)
        assert srv.jobs == 2
        assert srv.backlog == 0.0

    @settings(max_examples=30, deadline=None)
    @given(durations=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=10))
    def test_property_total_time_is_sum(self, durations):
        eng = Engine()
        srv = ProgressServer(eng, "t")
        last = [None]
        for d in durations:
            ev = srv.request(d)
        ev.callbacks.append(lambda _e: last.__setitem__(0, eng.now))
        eng.run()
        assert last[0] == pytest.approx(sum(durations))


class TestFabric:
    def make(self, machine=None):
        eng = Engine()
        m = machine or tiny_cluster(num_nodes=2, ppn=2)
        return eng, Fabric(eng, m, openmpi_profile())

    def test_node_placement_block(self):
        _, fab = self.make()
        assert [fab.node_of(r) for r in range(4)] == [0, 0, 1, 1]
        with pytest.raises(IndexError):
            fab.node_of(4)

    def test_intra_plan_uses_bus_twice(self):
        _, fab = self.make()
        plan = fab.plan(0, 1, 1024)
        assert plan.intra_node
        assert len(plan.resources) == 2
        assert plan.resources[0] == plan.resources[1]

    def test_inter_plan_includes_nics_and_buses(self):
        _, fab = self.make()
        plan = fab.plan(0, 2, 1024)
        assert not plan.intra_node
        assert fab.nic_tx_rid(0) in plan.resources
        assert fab.nic_rx_rid(1) in plan.resources
        assert fab.membus_rid(0) in plan.resources
        assert fab.membus_rid(1) in plan.resources

    def test_rate_cap_follows_profile(self):
        _, fab = self.make()
        prof = openmpi_profile()
        nic = fab.machine.nic.bw
        plan = fab.plan(0, 2, 64 * 1024)
        assert plan.rate_cap == pytest.approx(prof.rate_cap(64 * 1024, nic))

    def test_plan_latency_includes_hops_on_dragonfly(self):
        machine = shaheen2(num_nodes=16, ppn=2)
        eng = Engine()
        fab = Fabric(eng, machine, openmpi_profile())
        close = fab.plan(0, machine.ppn * 1, 1024).latency  # same router
        far = fab.plan(0, machine.ppn * 15, 1024).latency  # cross-group
        assert far > close

    def test_transfer_completes_after_latency_plus_bandwidth(self):
        eng, fab = self.make()
        done = {}
        nbytes = 1_000_000
        fab.start_transfer(0, 2, nbytes, lambda: done.setdefault("t", eng.now))
        eng.run()
        plan = fab.plan(0, 2, nbytes)
        expect = plan.latency + nbytes / plan.rate_cap
        assert done["t"] == pytest.approx(expect, rel=1e-6)

    def test_membus_flow_copies(self):
        eng, fab = self.make()
        done = {}
        fab.membus_flow(0, 1000.0, lambda: done.setdefault("one", eng.now),
                        copies=1, rate_cap=math.inf)
        eng.run()
        eng2, fab2 = self.make()
        fab2.membus_flow(0, 1000.0, lambda: done.setdefault("two", eng2.now),
                         copies=2, rate_cap=math.inf)
        eng2.run()
        # with no cap, duration is bus-bound: 2 copies take twice as long
        assert done["two"] == pytest.approx(2 * done["one"])
