"""Bit-identity of the batched ProgressServer entry points.

``request_call`` and ``request_burst`` exist purely as faster spellings
of ``request``: a caller switching between them must see the exact same
schedule, double for double.  The burst path is the risky one — its
grant math resolves in one vectorized accumulate, and only an
accumulate *seeded with the start instant* reproduces the per-call
rounding sequence (``start + cumsum(d)`` drifts by an ulp almost
immediately); these tests pin that contract against the scalar
reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.progress import ProgressServer
from repro.sim.engine import Engine


def _durations(seed: int, n: int = 24) -> list[float]:
    rng = np.random.default_rng(seed)
    d = (10.0 ** rng.uniform(-8, -3, n)).tolist()
    # sprinkle exact zeros (zero-cost jobs are legal and common for
    # zero-byte control messages)
    for i in rng.choice(n, size=3, replace=False).tolist():
        d[i] = 0.0
    return d


def _run_sequential(durations, idle_start=0.0, hook=None):
    eng = Engine()
    eng.overhead_hook = hook
    srv = ProgressServer(eng, "s", rank=3)
    times: list[float] = []

    def submit() -> None:
        for d in durations:
            srv.request(d).callbacks.append(lambda _e: times.append(eng.now))

    eng.schedule_at(idle_start, submit)
    eng.run()
    return times, srv.busy_time, srv.jobs, srv._busy_until


def _run_call(durations, idle_start=0.0, hook=None):
    eng = Engine()
    eng.overhead_hook = hook
    srv = ProgressServer(eng, "s", rank=3)
    times: list[float] = []

    def submit() -> None:
        for d in durations:
            srv.request_call(d, lambda: times.append(eng.now))

    eng.schedule_at(idle_start, submit)
    eng.run()
    return times, srv.busy_time, srv.jobs, srv._busy_until


def _run_burst(durations, idle_start=0.0, hook=None):
    eng = Engine()
    eng.overhead_hook = hook
    srv = ProgressServer(eng, "s", rank=3)
    times: list[float] = []

    def submit() -> None:
        for ev in srv.request_burst(durations):
            ev.callbacks.append(lambda _e: times.append(eng.now))

    eng.schedule_at(idle_start, submit)
    eng.run()
    return times, srv.busy_time, srv.jobs, srv._busy_until


@pytest.mark.parametrize("seed", range(10))
def test_request_call_matches_request_bitwise(seed):
    d = _durations(seed)
    assert _run_call(d) == _run_sequential(d)


@pytest.mark.parametrize("seed", range(10))
def test_burst_matches_sequential_requests_bitwise(seed):
    d = _durations(seed)
    assert _run_burst(d) == _run_sequential(d)


def test_burst_after_idle_gap_starts_at_now():
    # server idle since t=0; burst submitted at t=5 must start there
    d = [0.25, 0.5]
    seq = _run_sequential(d, idle_start=5.0)
    assert seq[0] == [5.25, 5.75]
    assert _run_burst(d, idle_start=5.0) == seq


def test_burst_consults_overhead_hook_per_job():
    calls: list[tuple[str, int, float]] = []

    def hook(kind: str, rank: int, dur: float) -> float:
        calls.append((kind, rank, dur))
        return dur * 2.0

    d = [0.5, 0.25, 0.0]
    seq = _run_sequential(d, hook=hook)
    seq_calls, calls[:] = list(calls), []
    burst = _run_burst(d, hook=hook)
    assert burst == seq
    assert calls == seq_calls  # same (kind, rank, duration) sequence


def test_empty_burst_is_a_noop():
    eng = Engine()
    srv = ProgressServer(eng, "s")
    assert srv.request_burst([]) == []
    assert (srv.jobs, srv.busy_time) == (0, 0.0)


def test_negative_duration_in_burst_rejected():
    eng = Engine()
    srv = ProgressServer(eng, "s")
    with pytest.raises(ValueError, match="negative duration"):
        srv.request_burst([0.1, -0.1])
