"""Shared machinery for collective-algorithm correctness tests."""

from __future__ import annotations

import numpy as np

from repro.hardware import gpu_cluster, gpu_pod, tiny_cluster
from repro.mpi import MPIRuntime

#: module names accepted by :func:`make_test_module`
MODULE_NAMES = ("han", "han3", "tuned", "libnbc", "adapt", "sm", "solo", "gpu")

#: modules that only run inside one node (shared-memory / device transports)
INTRA_ONLY = frozenset({"sm", "solo", "gpu"})

#: machine fabrics the matrix tests place modules on: ``flat`` is a
#: single NVLink/memory domain per node, ``pod`` splits each node into
#: two NVLink islands bridged over PCIe/host (``fabric_domains=2``)
FABRICS = ("flat", "pod")


def run_collective(nranks, program):
    """Run ``program(comm)`` on ``nranks`` ranks spread over 2-rank nodes."""
    nodes = max(1, (nranks + 1) // 2)
    machine = tiny_cluster(num_nodes=nodes, ppn=2)
    runtime = MPIRuntime(machine)
    return runtime.run(program, ranks=nranks), runtime.engine.now


def make_test_module(name: str, config=None):
    """Instantiate any collective module by name, including HAN itself.

    ``config`` (a :class:`~repro.core.config.HanConfig`) only applies to
    the HAN modules; plain transports ignore it.
    """
    if name == "han":
        from repro.core import HanModule

        return HanModule(config=config)
    if name == "han3":
        from repro.core.multilevel import MultiLevelHanModule

        return MultiLevelHanModule(config=config)
    from repro.modules import make_module

    return make_module(name)


def module_machine(name: str, nranks: int, fabric: str = "flat"):
    """A machine the named module can legally run ``nranks`` ranks on.

    ``fabric="pod"`` places the ranks on the split-NVLink ``gpu_pod``
    preset (two fabric islands per node); ``"flat"`` uses single-domain
    nodes — ``tiny_cluster`` for host transports, ``gpu_cluster`` for
    the device transport (which needs GPUs either way).
    """
    if fabric == "pod":
        if name in INTRA_ONLY:
            return gpu_pod(num_nodes=1, ppn=nranks)
        return gpu_pod(num_nodes=2, ppn=max(2, nranks // 2))
    if name == "gpu":
        return gpu_cluster(num_nodes=1, ppn=nranks)
    if name in INTRA_ONLY:
        return tiny_cluster(num_nodes=1, ppn=nranks)
    nodes = max(1, (nranks + 1) // 2)
    return tiny_cluster(num_nodes=nodes, ppn=2)


def run_module_collective(name: str, nranks: int, program,
                          fabric: str = "flat"):
    """``run_collective`` with module-appropriate rank placement."""
    runtime = MPIRuntime(module_machine(name, nranks, fabric))
    return runtime.run(program, ranks=nranks), runtime.engine.now


def rank_array(rank: int, n: int, dtype=np.float64) -> np.ndarray:
    """Deterministic distinct per-rank contribution."""
    return (np.arange(n, dtype=dtype) + 1) * (rank + 1)
