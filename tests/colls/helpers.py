"""Shared machinery for collective-algorithm correctness tests."""

from __future__ import annotations

import numpy as np

from repro.hardware import tiny_cluster
from repro.mpi import MPIRuntime

#: module names accepted by :func:`make_test_module`
MODULE_NAMES = ("han", "tuned", "libnbc", "adapt", "sm", "solo")

#: modules that only run inside one node (shared-memory transports)
INTRA_ONLY = frozenset({"sm", "solo"})


def run_collective(nranks, program):
    """Run ``program(comm)`` on ``nranks`` ranks spread over 2-rank nodes."""
    nodes = max(1, (nranks + 1) // 2)
    machine = tiny_cluster(num_nodes=nodes, ppn=2)
    runtime = MPIRuntime(machine)
    return runtime.run(program, ranks=nranks), runtime.engine.now


def make_test_module(name: str):
    """Instantiate any collective module by name, including HAN itself."""
    if name == "han":
        from repro.core import HanModule

        return HanModule()
    from repro.modules import make_module

    return make_module(name)


def module_machine(name: str, nranks: int):
    """A machine the named module can legally run ``nranks`` ranks on."""
    if name in INTRA_ONLY:
        return tiny_cluster(num_nodes=1, ppn=nranks)
    nodes = max(1, (nranks + 1) // 2)
    return tiny_cluster(num_nodes=nodes, ppn=2)


def run_module_collective(name: str, nranks: int, program):
    """``run_collective`` with module-appropriate rank placement."""
    runtime = MPIRuntime(module_machine(name, nranks))
    return runtime.run(program, ranks=nranks), runtime.engine.now


def rank_array(rank: int, n: int, dtype=np.float64) -> np.ndarray:
    """Deterministic distinct per-rank contribution."""
    return (np.arange(n, dtype=dtype) + 1) * (rank + 1)
