"""Shared machinery for collective-algorithm correctness tests."""

from __future__ import annotations

import numpy as np

from repro.hardware import tiny_cluster
from repro.mpi import MPIRuntime


def run_collective(nranks, program):
    """Run ``program(comm)`` on ``nranks`` ranks spread over 2-rank nodes."""
    nodes = max(1, (nranks + 1) // 2)
    machine = tiny_cluster(num_nodes=nodes, ppn=2)
    runtime = MPIRuntime(machine)
    return runtime.run(program, ranks=nranks), runtime.engine.now


def rank_array(rank: int, n: int, dtype=np.float64) -> np.ndarray:
    """Deterministic distinct per-rank contribution."""
    return (np.arange(n, dtype=dtype) + 1) * (rank + 1)
