"""Correctness of reduce and allreduce algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.colls import ALLREDUCE_ALGORITHMS, REDUCE_ALGORITHMS
from repro.mpi import MAX, MIN, PROD, SUM
from tests.colls.helpers import rank_array, run_collective

R_ALGS = sorted(REDUCE_ALGORITHMS)
AR_ALGS = sorted(ALLREDUCE_ALGORITHMS)


def expected(op, size, n):
    parts = [rank_array(r, n) for r in range(size)]
    acc = parts[0]
    for p in parts[1:]:
        acc = op(acc, p)
    return acc


@pytest.mark.parametrize("alg", R_ALGS)
@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
@pytest.mark.parametrize("root", [0, "last"])
def test_reduce_correct(alg, size, root):
    root = size - 1 if root == "last" else 0
    n = 30
    fn = REDUCE_ALGORITHMS[alg]

    def prog(comm):
        out = yield from fn(
            comm,
            nbytes=n * 8,
            root=root,
            payload=rank_array(comm.rank, n),
            op=SUM,
        )
        return out

    results, _ = run_collective(size, prog)
    np.testing.assert_allclose(results[root], expected(SUM, size, n))
    assert all(r is None for i, r in enumerate(results) if i != root)


@pytest.mark.parametrize("alg", R_ALGS)
@pytest.mark.parametrize("op", [SUM, MAX, MIN, PROD])
def test_reduce_all_commutative_ops(alg, op):
    n = 12
    fn = REDUCE_ALGORITHMS[alg]

    def prog(comm):
        out = yield from fn(
            comm, nbytes=n * 8, root=0, payload=rank_array(comm.rank, n), op=op
        )
        return out

    results, _ = run_collective(4, prog)
    np.testing.assert_allclose(results[0], expected(op, 4, n))


@pytest.mark.parametrize("alg", R_ALGS)
def test_reduce_segmented(alg):
    n = 64
    fn = REDUCE_ALGORITHMS[alg]

    def prog(comm):
        out = yield from fn(
            comm,
            nbytes=n * 8,
            root=0,
            payload=rank_array(comm.rank, n),
            op=SUM,
            segsize=100,
        )
        return out

    results, _ = run_collective(5, prog)
    np.testing.assert_allclose(results[0], expected(SUM, 5, n))


def test_noncommutative_rejected_on_trees():
    from repro.colls import reduce_binomial
    from repro.mpi.op import Op

    weird = Op("first", lambda a, b: a, commutative=False)

    def prog(comm):
        with pytest.raises(ValueError, match="non-commutative"):
            yield from reduce_binomial(
                comm, nbytes=8, payload=np.ones(1), op=weird
            )
        yield from comm.barrier()
        return True

    results, _ = run_collective(2, prog)
    assert all(results)


@pytest.mark.parametrize("alg", AR_ALGS)
@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8])
def test_allreduce_correct(alg, size):
    n = 40
    fn = ALLREDUCE_ALGORITHMS[alg]

    def prog(comm):
        out = yield from fn(
            comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=SUM
        )
        return out

    results, _ = run_collective(size, prog)
    want = expected(SUM, size, n)
    for r, out in enumerate(results):
        np.testing.assert_allclose(out, want, err_msg=f"alg={alg} rank={r}")


@pytest.mark.parametrize("alg", AR_ALGS)
def test_allreduce_timing_only(alg):
    fn = ALLREDUCE_ALGORITHMS[alg]

    def prog(comm):
        out = yield from fn(comm, nbytes=4 * 1024 * 1024)
        return out

    results, t = run_collective(4, prog)
    assert all(r is None for r in results)
    assert t > 0


@settings(max_examples=12, deadline=None)
@given(
    alg=st.sampled_from(AR_ALGS),
    size=st.integers(1, 8),
    nelems=st.integers(1, 100),
    seed=st.integers(0, 2**31),
)
def test_property_allreduce_matches_numpy(alg, size, nelems, seed):
    rng = np.random.default_rng(seed)
    contributions = [rng.standard_normal(nelems) for _ in range(size)]
    want = np.sum(contributions, axis=0)
    fn = ALLREDUCE_ALGORITHMS[alg]

    def prog(comm):
        out = yield from fn(
            comm, nbytes=nelems * 8, payload=contributions[comm.rank], op=SUM
        )
        return out

    results, _ = run_collective(size, prog)
    for out in results:
        np.testing.assert_allclose(out, want, rtol=1e-10)


def test_allreduce_avx_charges_less_time():
    fn = ALLREDUCE_ALGORITHMS["ring"]
    times = {}
    for avx in (False, True):

        def prog(comm, a=avx):
            yield from fn(comm, nbytes=32 * 1024 * 1024, avx=a)

        _, times[avx] = run_collective(4, prog)
    assert times[True] < times[False]


def test_ring_cheaper_than_recursive_doubling_large_message():
    """The classic bandwidth-vs-latency tradeoff must emerge."""
    times = {}
    for alg in ("ring", "recursive_doubling"):
        fn = ALLREDUCE_ALGORITHMS[alg]

        def prog(comm, f=fn):
            yield from f(comm, nbytes=64 * 1024 * 1024)

        _, times[alg] = run_collective(8, prog)
    assert times["ring"] < times["recursive_doubling"]


def test_recursive_doubling_cheaper_small_message():
    times = {}
    for alg in ("ring", "recursive_doubling"):
        fn = ALLREDUCE_ALGORITHMS[alg]

        def prog(comm, f=fn):
            yield from f(comm, nbytes=8)

        _, times[alg] = run_collective(8, prog)
    assert times["recursive_doubling"] < times["ring"]
