"""Correctness of gather, scatter, allgather, reduce_scatter, alltoall,
barrier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.colls import (
    ALLGATHER_ALGORITHMS,
    ALLTOALL_ALGORITHMS,
    BARRIER_ALGORITHMS,
    GATHER_ALGORITHMS,
    REDUCE_SCATTER_ALGORITHMS,
    SCATTER_ALGORITHMS,
)
from repro.mpi import SUM
from tests.colls.helpers import rank_array, run_collective

BLOCK = 6


def world_concat(size, n=BLOCK):
    return np.concatenate([rank_array(r, n) for r in range(size)])


@pytest.mark.parametrize("alg", sorted(GATHER_ALGORITHMS))
@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
@pytest.mark.parametrize("root", [0, "last"])
def test_gather(alg, size, root):
    root = size - 1 if root == "last" else 0
    fn = GATHER_ALGORITHMS[alg]

    def prog(comm):
        out = yield from fn(
            comm, nbytes=BLOCK * 8, root=root, payload=rank_array(comm.rank, BLOCK)
        )
        return out

    results, _ = run_collective(size, prog)
    np.testing.assert_array_equal(results[root], world_concat(size))
    assert all(r is None for i, r in enumerate(results) if i != root)


@pytest.mark.parametrize("alg", sorted(SCATTER_ALGORITHMS))
@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
@pytest.mark.parametrize("root", [0, "last"])
def test_scatter(alg, size, root):
    root = size - 1 if root == "last" else 0
    fn = SCATTER_ALGORITHMS[alg]
    full = world_concat(size)

    def prog(comm):
        payload = full if comm.rank == root else None
        out = yield from fn(
            comm, nbytes=full.nbytes, root=root, payload=payload
        )
        return out

    results, _ = run_collective(size, prog)
    for r, out in enumerate(results):
        np.testing.assert_array_equal(
            out, rank_array(r, BLOCK), err_msg=f"alg={alg} rank={r}"
        )


@pytest.mark.parametrize("alg", sorted(ALLGATHER_ALGORITHMS))
@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
def test_allgather(alg, size):
    fn = ALLGATHER_ALGORITHMS[alg]

    def prog(comm):
        out = yield from fn(
            comm, nbytes=BLOCK * 8, payload=rank_array(comm.rank, BLOCK)
        )
        return out

    results, _ = run_collective(size, prog)
    want = world_concat(size)
    for r, out in enumerate(results):
        np.testing.assert_array_equal(out, want, err_msg=f"alg={alg} rank={r}")


@pytest.mark.parametrize("alg", sorted(REDUCE_SCATTER_ALGORITHMS))
@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
def test_reduce_scatter(alg, size):
    fn = REDUCE_SCATTER_ALGORITHMS[alg]
    n = size * 5  # 5 elements per block

    def prog(comm):
        out = yield from fn(
            comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=SUM
        )
        return out

    results, _ = run_collective(size, prog)
    total = np.sum([rank_array(r, n) for r in range(size)], axis=0)
    bounds = np.linspace(0, n, size + 1).astype(int)
    for r, out in enumerate(results):
        np.testing.assert_allclose(
            out, total[bounds[r] : bounds[r + 1]], err_msg=f"alg={alg} rank={r}"
        )


@pytest.mark.parametrize("alg", sorted(ALLTOALL_ALGORITHMS))
@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
def test_alltoall(alg, size):
    fn = ALLTOALL_ALGORITHMS[alg]
    n = size * 4

    def prog(comm):
        # element value encodes (sender, destination block)
        payload = np.arange(n, dtype=np.float64) + 1000 * comm.rank
        out = yield from fn(comm, nbytes=4 * 8, payload=payload)
        return out

    results, _ = run_collective(size, prog)
    for me, out in enumerate(results):
        want = np.concatenate(
            [
                np.arange(me * 4, me * 4 + 4, dtype=np.float64) + 1000 * src
                for src in range(size)
            ]
        )
        np.testing.assert_array_equal(out, want, err_msg=f"alg={alg} rank={me}")


@pytest.mark.parametrize("alg", sorted(BARRIER_ALGORITHMS))
@pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
def test_barrier_no_early_exit(alg, size):
    fn = BARRIER_ALGORITHMS[alg]
    slowest_entry = 0.25 * (size - 1)
    exits = {}

    def prog(comm):
        yield from comm.compute(0.25 * comm.rank)
        yield from fn(comm)
        exits[comm.rank] = comm.now

    run_collective(size, prog)
    assert min(exits.values()) >= slowest_entry


@settings(max_examples=10, deadline=None)
@given(
    alg=st.sampled_from(sorted(ALLGATHER_ALGORITHMS)),
    size=st.integers(1, 8),
    block=st.integers(1, 32),
    seed=st.integers(0, 2**31),
)
def test_property_allgather(alg, size, block, seed):
    rng = np.random.default_rng(seed)
    data = [rng.standard_normal(block) for _ in range(size)]
    fn = ALLGATHER_ALGORITHMS[alg]

    def prog(comm):
        out = yield from fn(comm, nbytes=block * 8, payload=data[comm.rank])
        return out

    results, _ = run_collective(size, prog)
    want = np.concatenate(data)
    for out in results:
        np.testing.assert_allclose(out, want)
