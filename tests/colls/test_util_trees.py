"""Property tests for tree shapes and segmentation utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.colls.trees import binary_tree, binomial_tree, chain_tree, knomial_tree
from repro.colls.util import (
    COLL_TAG_BASE,
    _TAG_BLOCK,
    _TAG_SLOTS,
    Segmenter,
    coll_tag_block,
    combine,
    unvrank,
    vrank,
)
from repro.mpi.constants import INTERNAL_TAG_BASE
from repro.mpi.op import SUM

TREES = {
    "binomial": binomial_tree,
    "binary": binary_tree,
    "chain": chain_tree,
    "knomial": lambda v, s: knomial_tree(v, s, radix=4),
}


@pytest.mark.parametrize("name,fn", sorted(TREES.items()))
@pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 17, 64])
def test_tree_is_consistent_spanning_tree(name, fn, size):
    """Parent/children agree, root is 0, every vertex is reachable."""
    seen = set()
    for v in range(size):
        t = fn(v, size)
        if v == 0:
            assert t.parent == -1
        else:
            assert 0 <= t.parent < size
            # v must be among its parent's children
            assert v in fn(t.parent, size).children
        for c in t.children:
            assert fn(c, size).parent == v
            assert c not in seen
            seen.add(c)
    assert seen == set(range(1, size))


@pytest.mark.parametrize("name,fn", sorted(TREES.items()))
def test_tree_rejects_bad_queries(name, fn):
    with pytest.raises(ValueError):
        fn(0, 0)
    with pytest.raises(ValueError):
        fn(5, 5)


def test_chain_is_a_path():
    for v in range(6):
        t = chain_tree(v, 7)
        assert t.children == ((v + 1,) if v + 1 < 7 else ())


def test_binomial_depth_is_logarithmic():
    size = 64

    def depth(v):
        d = 0
        while v:
            v = binomial_tree(v, size).parent
            d += 1
        return d

    assert max(depth(v) for v in range(size)) == 6


def test_knomial_radix_bounds_children():
    for v in range(27):
        t = knomial_tree(v, 27, radix=3)
        # at most (radix-1) children per digit level
        assert len(t.children) <= 2 * 3


@settings(max_examples=40, deadline=None)
@given(
    rank=st.integers(0, 99),
    root=st.integers(0, 99),
    size=st.integers(1, 100),
)
def test_property_vrank_roundtrip(rank, root, size):
    rank, root = rank % size, root % size
    assert unvrank(vrank(rank, root, size), root, size) == rank
    assert vrank(root, root, size) == 0


class TestSegmenter:
    def test_single_segment_when_no_segsize(self):
        s = Segmenter(1000, None)
        assert s.nseg == 1
        assert s.seg_nbytes(0) == 1000

    def test_count_from_declared_bytes(self):
        s = Segmenter(1000, 300)
        assert s.nseg == 4
        assert sum(s.seg_nbytes(i) for i in range(4)) == pytest.approx(1000)

    def test_views_cover_payload_without_copies(self):
        data = np.arange(100, dtype=np.float64)
        s = Segmenter(data.nbytes, 128, data)
        parts = [s.seg_view(i) for i in range(s.nseg)]
        np.testing.assert_array_equal(np.concatenate(parts), data)
        assert all(p.base is data for p in parts)  # views, not copies

    def test_structure_agrees_with_and_without_payload(self):
        """The invariant that keeps senders and receivers in lockstep."""
        data = np.arange(77, dtype=np.float64)
        with_p = Segmenter(data.nbytes, 100, data)
        without = Segmenter(data.nbytes, 100, None)
        assert with_p.nseg == without.nseg
        for i in range(with_p.nseg):
            assert with_p.seg_nbytes(i) == without.seg_nbytes(i)

    def test_zero_bytes(self):
        s = Segmenter(0, 100)
        assert s.nseg == 1

    def test_rejects_multidim_payload(self):
        with pytest.raises(ValueError):
            Segmenter(64, None, np.zeros((2, 4)))

    @settings(max_examples=50, deadline=None)
    @given(
        nelems=st.integers(1, 500),
        segsize=st.integers(1, 4096),
    )
    def test_property_views_partition_payload(self, nelems, segsize):
        data = np.arange(nelems, dtype=np.float64)
        s = Segmenter(data.nbytes, segsize, data)
        parts = [s.seg_view(i) for i in range(s.nseg)]
        assert sum(p.size for p in parts) == nelems
        np.testing.assert_array_equal(np.concatenate(parts), data)

    def test_float_ceil_overshoot_does_not_mint_sliver_segment(self):
        # 1.1e6 / 1.1e5 evaluates to 10.000000000000002, so a naive
        # ceil()-based count mints an 11th, ~2e-10-byte trailing segment
        s = Segmenter(1.1e6, 1.1e5)
        assert s.nseg == 10
        assert sum(s.seg_nbytes(i) for i in range(s.nseg)) == pytest.approx(1.1e6)

    def test_exact_multiple_splits_evenly(self):
        s = Segmenter(4 * 2**20, 1 * 2**20)
        assert s.nseg == 4
        assert all(s.seg_nbytes(i) == 2**20 for i in range(4))

    @settings(max_examples=60, deadline=None)
    @given(
        mult=st.integers(2, 40),
        segsize=st.floats(1.0, 2**22, allow_nan=False, allow_infinity=False),
    )
    def test_property_no_degenerate_segments(self, mult, segsize):
        s = Segmenter(mult * segsize, segsize)
        assert all(s.seg_nbytes(i) > 0 for i in range(s.nseg))
        assert sum(s.seg_nbytes(i) for i in range(s.nseg)) == pytest.approx(
            mult * segsize
        )


class TestCollTagBlock:
    class FakeComm:
        """coll_tag_block only touches the per-communicator sequence slot."""

    def test_blocks_stay_distinct_past_old_wraparound(self):
        # the old allocator recycled after 8192 collectives, aliasing tags
        # of still-in-flight calls; allocation is now strictly monotonic
        comm = self.FakeComm()
        tags = [coll_tag_block(comm) for _ in range(8192 + 64)]
        assert len(set(tags)) == len(tags)
        assert tags == sorted(tags)
        assert tags[0] == COLL_TAG_BASE
        assert tags[1] - tags[0] == _TAG_BLOCK
        assert all(t + _TAG_BLOCK <= INTERNAL_TAG_BASE for t in tags)

    def test_raises_on_exhaustion_instead_of_aliasing(self):
        comm = self.FakeComm()
        comm._coll_seq = _TAG_SLOTS - 1
        last = coll_tag_block(comm)
        assert last + _TAG_BLOCK <= INTERNAL_TAG_BASE
        with pytest.raises(RuntimeError, match="dup"):
            coll_tag_block(comm)


def test_combine_handles_timing_mode():
    a = np.ones(3)
    assert combine(SUM, None, None) is None
    np.testing.assert_array_equal(combine(SUM, a, None), a)
    np.testing.assert_array_equal(combine(SUM, None, a), a)
    np.testing.assert_array_equal(combine(SUM, a, a), 2 * a)
