"""Correctness of scan/exscan algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.colls import SCAN_ALGORITHMS, exscan_linear
from repro.mpi import MAX, SUM
from repro.mpi.op import Op
from tests.colls.helpers import rank_array, run_collective


def prefix(op, size, n, upto):
    acc = rank_array(0, n)
    for r in range(1, upto + 1):
        acc = op(acc, rank_array(r, n))
    return acc


@pytest.mark.parametrize("alg", sorted(SCAN_ALGORITHMS))
@pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
@pytest.mark.parametrize("op", [SUM, MAX])
def test_scan_inclusive_prefixes(alg, size, op):
    n = 10
    fn = SCAN_ALGORITHMS[alg]

    def prog(comm):
        out = yield from fn(
            comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=op
        )
        return out

    results, _ = run_collective(size, prog)
    for r, out in enumerate(results):
        np.testing.assert_allclose(
            out, prefix(op, size, n, r), err_msg=f"alg={alg} rank={r}"
        )


def test_scan_preserves_noncommutative_order():
    # "left" is associative but not commutative: the prefix of any rank
    # must be rank 0's value -- a wrong operand order would leak higher
    # ranks' values in.
    left = Op("left", lambda a, b: a, commutative=False)

    def prog(comm):
        out = yield from SCAN_ALGORITHMS["recursive_doubling"](
            comm,
            nbytes=8,
            payload=np.array([float(comm.rank + 1)]),
            op=left,
        )
        return out

    results, _ = run_collective(5, prog)
    for r, out in enumerate(results):
        assert out[0] == 1.0, r


@pytest.mark.parametrize("size", [1, 2, 4, 7])
def test_exscan(size):
    n = 6

    def prog(comm):
        out = yield from exscan_linear(
            comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=SUM
        )
        return out

    results, _ = run_collective(size, prog)
    assert results[0] is None
    for r in range(1, size):
        np.testing.assert_allclose(results[r], prefix(SUM, size, n, r - 1))


@settings(max_examples=10, deadline=None)
@given(size=st.integers(1, 8), nelems=st.integers(1, 40),
       seed=st.integers(0, 2**31))
def test_property_scan_matches_cumsum(size, nelems, seed):
    rng = np.random.default_rng(seed)
    data = [rng.standard_normal(nelems) for _ in range(size)]

    def prog(comm):
        out = yield from SCAN_ALGORITHMS["recursive_doubling"](
            comm, nbytes=nelems * 8, payload=data[comm.rank], op=SUM
        )
        return out

    results, _ = run_collective(size, prog)
    want = np.cumsum(data, axis=0)
    for r, out in enumerate(results):
        np.testing.assert_allclose(out, want[r], rtol=1e-10)


@pytest.mark.parametrize("alg", sorted(SCAN_ALGORITHMS))
def test_scan_timing_only(alg):
    def prog(comm):
        out = yield from SCAN_ALGORITHMS[alg](comm, nbytes=1024 * 1024)
        return out

    results, t = run_collective(4, prog)
    assert all(r is None for r in results)
    assert t > 0
