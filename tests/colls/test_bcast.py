"""Correctness of every broadcast algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.colls import BCAST_ALGORITHMS
from tests.colls.helpers import run_collective

ALGS = sorted(BCAST_ALGORITHMS)


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_delivers_payload_everywhere(alg, size, root):
    root = size - 1 if root == "last" else 0
    data = np.arange(48, dtype=np.float64) * 3.5
    fn = BCAST_ALGORITHMS[alg]

    def prog(comm):
        payload = data if comm.rank == root else None
        out = yield from fn(
            comm, nbytes=data.nbytes, root=root, payload=payload
        )
        return out

    results, t = run_collective(size, prog)
    for r, out in enumerate(results):
        np.testing.assert_array_equal(out, data, err_msg=f"alg={alg} rank={r}")
    if size > 1:
        assert t > 0


@pytest.mark.parametrize("alg", ALGS)
@pytest.mark.parametrize("segsize", [16, 64, 10_000])
def test_bcast_segmentation_preserves_data(alg, segsize):
    data = np.arange(100, dtype=np.float64)
    fn = BCAST_ALGORITHMS[alg]

    def prog(comm):
        payload = data if comm.rank == 0 else None
        out = yield from fn(
            comm, nbytes=data.nbytes, root=0, payload=payload, segsize=segsize
        )
        return out

    results, _ = run_collective(5, prog)
    for out in results:
        np.testing.assert_array_equal(out, data)


@pytest.mark.parametrize("alg", ALGS)
def test_bcast_timing_only_mode(alg):
    fn = BCAST_ALGORITHMS[alg]

    def prog(comm):
        out = yield from fn(comm, nbytes=1_000_000, root=0, segsize=65536)
        return out

    results, t = run_collective(4, prog)
    assert all(r is None for r in results)
    assert t > 0


def test_pipelined_chain_beats_unsegmented_chain_large_message():
    """Pipelining is the point of segmentation (paper sec III)."""
    from repro.colls import bcast_chain

    times = {}
    for segsize in (None, 256 * 1024):
        def prog(comm, s=segsize):
            yield from bcast_chain(comm, nbytes=16 * 1024 * 1024, segsize=s)

        _, times[segsize] = run_collective(6, prog)
    assert times[256 * 1024] < times[None] * 0.7


@settings(max_examples=15, deadline=None)
@given(
    alg=st.sampled_from(ALGS),
    size=st.integers(1, 7),
    nelems=st.integers(1, 200),
    seed=st.integers(0, 2**31),
)
def test_property_bcast_any_shape(alg, size, nelems, seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(nelems)
    root = int(rng.integers(0, size))
    fn = BCAST_ALGORITHMS[alg]

    def prog(comm):
        payload = data if comm.rank == root else None
        out = yield from fn(comm, nbytes=data.nbytes, root=root, payload=payload)
        return out

    results, _ = run_collective(size, prog)
    for out in results:
        np.testing.assert_array_equal(out, data)


def test_payload_at_nonroot_rejected():
    from repro.colls import bcast_binomial

    data = np.ones(8)

    def prog2(comm):
        if comm.rank == 0:
            out = yield from bcast_binomial(comm, nbytes=64, root=0, payload=data)
            return out is data
        with pytest.raises(ValueError):
            yield from bcast_binomial(comm, nbytes=64, root=0, payload=data)
        return True

    results, _ = run_collective(2, prog2)
    assert all(results)
