"""Point-to-point semantics and timing of the simulated MPI runtime."""

import numpy as np
import pytest

from repro.hardware import tiny_cluster, small_cluster
from repro.mpi import ANY_SOURCE, ANY_TAG, MPIRuntime
from repro.sim import DeadlockError


def rt(num_nodes=2, ppn=2, **kw):
    return MPIRuntime(tiny_cluster(num_nodes=num_nodes, ppn=ppn), **kw)


def test_send_recv_payload_roundtrip():
    runtime = rt()
    data = np.arange(10, dtype=np.float64)

    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(1, payload=data)
            return None
        elif comm.rank == 1:
            msg = yield from comm.recv(0)
            return msg
        return None

    results = runtime.run(prog)
    msg = results[1]
    assert msg.source == 0
    assert msg.nbytes == 80
    np.testing.assert_array_equal(msg.payload, data)
    assert runtime.engine.now > 0


def test_send_without_nbytes_or_array_rejected():
    runtime = rt()

    def prog(comm):
        if comm.rank == 0:
            with pytest.raises(ValueError):
                comm.isend(1, payload={"not": "an array"})
        yield from comm.barrier()

    runtime.run(prog)


def test_message_timing_scales_with_size():
    durations = {}
    for nbytes in (1024, 1024 * 1024):
        runtime = rt()

        def prog(comm, n=nbytes):
            if comm.rank == 0:
                yield from comm.send(2, nbytes=n)  # rank 2 = other node
            elif comm.rank == 2:
                yield from comm.recv(0)

        runtime.run(prog)
        durations[nbytes] = runtime.engine.now
    assert durations[1024 * 1024] > durations[1024] * 10


def test_intra_node_faster_than_inter_node():
    times = {}
    for label, dst in (("intra", 1), ("inter", 2)):
        runtime = rt()  # ppn=2: ranks 0,1 on node 0; 2,3 on node 1

        def prog(comm, dst=dst):
            if comm.rank == 0:
                yield from comm.send(dst, nbytes=256 * 1024)
            elif comm.rank == dst:
                yield from comm.recv(0)

        runtime.run(prog)
        times[label] = runtime.engine.now
    assert times["intra"] < times["inter"]


def test_eager_send_completes_before_recv_posted():
    runtime = rt()
    completion = {}

    def prog(comm):
        if comm.rank == 0:
            req = comm.isend(1, nbytes=512)  # below eager threshold
            yield from comm.wait(req)
            completion["send_done"] = comm.now
        elif comm.rank == 1:
            yield from comm.compute(1.0)  # recv posted very late
            msg = yield from comm.recv(0)
            completion["recv_done"] = comm.now
            assert msg.nbytes == 512

    runtime.run(prog)
    assert completion["send_done"] < 1e-3
    assert completion["recv_done"] >= 1.0


def test_rendezvous_send_blocks_until_recv_posted():
    runtime = rt()
    completion = {}

    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes=4 * 1024 * 1024)  # >> eager
            completion["send_done"] = comm.now
        elif comm.rank == 1:
            yield from comm.compute(1.0)
            yield from comm.recv(0)

    runtime.run(prog)
    assert completion["send_done"] > 1.0


def test_matching_order_non_overtaking_same_tag():
    # Big message sent first, small second, same tag: recvs must see them
    # in send order even though the small one physically lands earlier.
    runtime = rt()
    got = []

    def prog(comm):
        if comm.rank == 0:
            r1 = comm.isend(2, nbytes=8 * 1024 * 1024, tag=7)
            r2 = comm.isend(2, nbytes=16, tag=7)
            yield from comm.waitall([r1, r2])
        elif comm.rank == 2:
            m1 = yield from comm.recv(0, tag=7)
            m2 = yield from comm.recv(0, tag=7)
            got.extend([m1.nbytes, m2.nbytes])

    runtime.run(prog)
    assert got == [8 * 1024 * 1024, 16]


def test_tag_selective_matching():
    runtime = rt()
    got = {}

    def prog(comm):
        if comm.rank == 0:
            ra = comm.isend(1, nbytes=100, tag=5)
            rb = comm.isend(1, nbytes=200, tag=9)
            yield from comm.waitall([ra, rb])
        elif comm.rank == 1:
            m9 = yield from comm.recv(0, tag=9)
            m5 = yield from comm.recv(0, tag=5)
            got["by_tag"] = (m9.nbytes, m5.nbytes)

    runtime.run(prog)
    assert got["by_tag"] == (200, 100)


def test_wildcard_source_and_tag():
    runtime = rt(num_nodes=2, ppn=2)
    got = []

    def prog(comm):
        if comm.rank in (1, 2, 3):
            yield from comm.send(0, nbytes=64, tag=comm.rank)
        else:
            for _ in range(3):
                msg = yield from comm.recv(ANY_SOURCE, ANY_TAG)
                got.append((msg.source, msg.tag))

    runtime.run(prog)
    assert sorted(got) == [(1, 1), (2, 2), (3, 3)]


def test_waitany_returns_first():
    runtime = rt()

    def prog(comm):
        if comm.rank == 0:
            yield from comm.compute(1.0)
            yield from comm.send(1, nbytes=32, tag=1)
        elif comm.rank == 2:
            yield from comm.send(1, nbytes=32, tag=2)
        elif comm.rank == 1:
            r0 = comm.irecv(source=0)
            r2 = comm.irecv(source=2)
            idx, msg = yield from comm.waitany([r0, r2])
            assert idx == 1 and msg.tag == 2
            yield from comm.wait(r0)

    runtime.run(prog)


def test_deadlock_detected_on_missing_send():
    runtime = rt()

    def prog(comm):
        if comm.rank == 1:
            yield from comm.recv(0)  # never sent

    with pytest.raises(DeadlockError):
        runtime.run(prog)


def test_sendrecv_ring_rotation():
    runtime = rt(num_nodes=2, ppn=2)

    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        data = np.full(4, comm.rank, dtype=np.int32)
        msg = yield from comm.sendrecv(right, left, payload=data)
        return int(msg.payload[0])

    results = runtime.run(prog)
    assert results == [3, 0, 1, 2]


def test_out_of_range_peers_rejected():
    runtime = rt()

    def prog(comm):
        if comm.rank == 0:
            with pytest.raises(IndexError):
                comm.isend(99, nbytes=1)
            with pytest.raises(IndexError):
                comm.irecv(source=99)
        yield from comm.barrier()

    runtime.run(prog)


def test_run_with_restricted_ranks():
    runtime = MPIRuntime(small_cluster(num_nodes=2, ppn=4))

    def prog(comm):
        yield from comm.barrier()
        return comm.size

    results = runtime.run(prog, ranks=3)
    assert results == [3, 3, 3]


def test_progress_server_serializes_overheads():
    # Two concurrent sends from one rank must queue their CPU overheads.
    runtime = rt()
    prof = runtime.profile

    def prog(comm):
        if comm.rank == 0:
            reqs = [comm.isend(1, nbytes=512, tag=i) for i in range(50)]
            yield from comm.waitall(reqs)
            return comm.now
        elif comm.rank == 1:
            for i in range(50):
                yield from comm.recv(0, tag=i)
        return None

    results = runtime.run(prog)
    # 50 eager sends' overheads serialize on the sender progress engine.
    assert results[0] >= 50 * prof.send_overhead(512) * 0.99


def test_reduce_compute_avx_faster():
    runtime = rt()

    def prog(comm, avx):
        yield from comm.reduce_compute(10 * 1024 * 1024, avx=avx)

    runtime.run(prog, False, ranks=1)
    t_scalar = runtime.engine.now

    runtime2 = rt()
    runtime2.run(prog, True, ranks=1)
    assert runtime2.engine.now < t_scalar
