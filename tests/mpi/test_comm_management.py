"""Communicator split / split_type / dup / barrier semantics."""

import numpy as np
import pytest

from repro.hardware import tiny_cluster
from repro.mpi import MPIRuntime, UNDEFINED


def rt(num_nodes=2, ppn=2):
    return MPIRuntime(tiny_cluster(num_nodes=num_nodes, ppn=ppn))


def test_split_by_parity():
    runtime = rt(num_nodes=2, ppn=2)

    def prog(comm):
        sub = yield from comm.split(color=comm.rank % 2)
        return (sub.rank, sub.size, sub.group)

    results = runtime.run(prog)
    assert results[0] == (0, 2, (0, 2))
    assert results[2] == (1, 2, (0, 2))
    assert results[1] == (0, 2, (1, 3))
    assert results[3] == (1, 2, (1, 3))


def test_split_key_reorders_ranks():
    runtime = rt()

    def prog(comm):
        sub = yield from comm.split(color=0, key=-comm.rank)  # reverse
        return sub.rank

    results = runtime.run(prog)
    assert results == [3, 2, 1, 0]


def test_split_undefined_returns_none():
    runtime = rt()

    def prog(comm):
        color = 0 if comm.rank == 0 else UNDEFINED
        sub = yield from comm.split(color=color)
        return sub if sub is None else (sub.rank, sub.size)

    results = runtime.run(prog)
    assert results[0] == (0, 1)
    assert results[1:] == [None, None, None]


def test_split_type_shared_groups_by_node():
    runtime = rt(num_nodes=2, ppn=2)

    def prog(comm):
        intra = yield from comm.split_type_shared()
        return (intra.rank, intra.size, comm.node_of())

    results = runtime.run(prog)
    # ranks 0,1 on node 0; 2,3 on node 1
    assert results == [(0, 2, 0), (1, 2, 0), (0, 2, 1), (1, 2, 1)]


def test_hierarchy_intra_plus_leader_comm():
    """The exact two-level decomposition HAN builds (paper section III)."""
    runtime = rt(num_nodes=3, ppn=2)

    def prog(comm):
        intra = yield from comm.split_type_shared()
        is_leader = intra.rank == 0
        inter = yield from comm.split(color=0 if is_leader else UNDEFINED)
        return (is_leader, None if inter is None else inter.size)

    results = runtime.run(prog)
    leaders = [r for r in results if r[0]]
    assert len(leaders) == 3
    assert all(r[1] == 3 for r in leaders)
    assert all(r[1] is None for r in results if not r[0])


def test_p2p_inside_subcommunicator_uses_sub_ranks():
    runtime = rt(num_nodes=2, ppn=2)

    def prog(comm):
        sub = yield from comm.split(color=comm.rank % 2)
        # world 2 is rank 1 of the even subcomm; world 0 is rank 0
        result = None
        if comm.rank == 0:
            yield from sub.send(1, payload=np.array([42.0]))
        elif comm.rank == 2:
            msg = yield from sub.recv(0)
            result = float(msg.payload[0])
        yield from comm.barrier()
        return result

    results = runtime.run(prog)
    assert results[2] == 42.0


def test_dup_isolates_matching_contexts():
    runtime = rt()

    def prog(comm):
        dup = yield from comm.dup()
        result = None
        if comm.rank == 0:
            # same (dest, tag) on both comms; must not cross-match
            r1 = comm.isend(1, nbytes=100, tag=0)
            r2 = dup.isend(1, nbytes=200, tag=0)
            yield from comm.waitall([r1, r2])
        elif comm.rank == 1:
            m_dup = yield from dup.recv(0, tag=0)
            m_orig = yield from comm.recv(0, tag=0)
            result = (m_dup.nbytes, m_orig.nbytes)
        yield from comm.barrier()
        return result

    results = runtime.run(prog)
    assert results[1] == (200, 100)


def test_multiple_sequential_splits():
    runtime = rt()

    def prog(comm):
        a = yield from comm.split(color=0)
        b = yield from a.split(color=a.rank % 2)
        return b.size

    results = runtime.run(prog)
    assert results == [2, 2, 2, 2]


def test_barrier_synchronizes_all_ranks():
    runtime = rt(num_nodes=2, ppn=2)
    exit_times = {}

    def prog(comm):
        yield from comm.compute(float(comm.rank))  # staggered arrival
        yield from comm.barrier()
        exit_times[comm.rank] = comm.now

    runtime.run(prog)
    # no rank may exit before the slowest (rank 3, arrives at t=3) entered
    assert min(exit_times.values()) >= 3.0


def test_barrier_on_size_one_comm_is_noop():
    runtime = rt()

    def prog(comm):
        solo = yield from comm.split(color=comm.rank)
        yield from solo.barrier()
        return True

    assert all(runtime.run(prog))


def test_node_of_rank():
    runtime = rt(num_nodes=2, ppn=2)

    def prog(comm):
        yield from comm.barrier()
        return [comm.node_of(r) for r in range(comm.size)]

    results = runtime.run(prog)
    assert results[0] == [0, 0, 1, 1]
