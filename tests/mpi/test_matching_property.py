"""Property tests for MPI matching semantics under random traffic."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import tiny_cluster
from repro.mpi import ANY_SOURCE, ANY_TAG, MPIRuntime


@settings(max_examples=20, deadline=None)
@given(
    tags=st.lists(st.integers(0, 3), min_size=1, max_size=12),
    sizes=st.lists(st.integers(1, 64 * 1024), min_size=1, max_size=12),
    seed=st.integers(0, 2**31),
)
def test_per_tag_fifo_under_random_sizes(tags, sizes, seed):
    """Messages of one (src, tag) stream match in send order, regardless
    of payload sizes and posting order of other tags."""
    n = min(len(tags), len(sizes))
    tags, sizes = tags[:n], sizes[:n]
    runtime = MPIRuntime(tiny_cluster(num_nodes=2, ppn=1))
    rng = np.random.default_rng(seed)
    recv_tag_order = list(rng.permutation(sorted(set(tags))))
    got: dict[int, list[int]] = {t: [] for t in set(tags)}

    def prog(comm):
        if comm.rank == 0:
            reqs = [
                comm.isend(1, nbytes=sz, tag=t, payload=None)
                for t, sz in zip(tags, sizes)
            ]
            yield from comm.waitall(reqs)
        else:
            # post receives grouped by tag, in a random tag order
            for t in recv_tag_order:
                for _ in range(tags.count(t)):
                    msg = yield from comm.recv(source=0, tag=t)
                    got[t].append(int(msg.nbytes))

    runtime.run(prog)
    for t in set(tags):
        sent = [sz for tg, sz in zip(tags, sizes) if tg == t]
        assert got[t] == sent, (t, got[t], sent)


@settings(max_examples=15, deadline=None)
@given(
    nmsgs=st.integers(1, 16),
    seed=st.integers(0, 2**31),
)
def test_wildcard_receives_drain_everything(nmsgs, seed):
    rng = np.random.default_rng(seed)
    senders = rng.integers(1, 4, size=nmsgs)  # ranks 1..3
    runtime = MPIRuntime(tiny_cluster(num_nodes=2, ppn=2))
    got = []

    def prog(comm):
        mine = int((senders == comm.rank).sum()) if comm.rank else 0
        if comm.rank == 0:
            for _ in range(nmsgs):
                msg = yield from comm.recv(ANY_SOURCE, ANY_TAG)
                got.append(msg.source)
        else:
            for i in range(mine):
                yield from comm.send(0, nbytes=64, tag=i)

    runtime.run(prog)
    assert sorted(got) == sorted(senders.tolist())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31), n=st.integers(2, 20))
def test_sendrecv_chain_conserves_payload_sum(seed, n):
    """Random payloads rotated around a ring end where they started."""
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 1000, size=4)
    runtime = MPIRuntime(tiny_cluster(num_nodes=2, ppn=2))

    def prog(comm):
        buf = np.array([values[comm.rank]], dtype=np.int64)
        for _ in range(comm.size):  # full rotation
            msg = yield from comm.sendrecv(
                (comm.rank + 1) % comm.size,
                (comm.rank - 1) % comm.size,
                payload=buf,
            )
            buf = msg.payload
        return int(buf[0])

    results = runtime.run(prog)
    assert results == [int(v) for v in values]
