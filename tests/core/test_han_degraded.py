"""HAN degraded mode: dead inter-node link -> flat fallback.

Topology: 5 nodes on a 1D torus (ring).  Killing both directions of the
2<->3 link wedges every hierarchical inter-node schedule (chain/binary
trees span the whole ring), but star routes to/from node 0 survive
(2 -> 1 -> 0 and 3 -> 4 -> 0), which is exactly what the flat fallback
uses.
"""

import dataclasses

import numpy as np

from repro.core.han import HanModule
from repro.faults import FaultPlan, FaultyMachineSpec, LinkFlap
from repro.hardware import small_cluster
from repro.mpi import MPIRuntime

KiB = 1024


def ring5(ppn=2):
    return dataclasses.replace(
        small_cluster(num_nodes=5, ppn=ppn),
        topology="torus", topo_params={"dims": (5,)},
    )


def dead_link_machine():
    return FaultyMachineSpec.wrap(ring5(), FaultPlan().add(LinkFlap(("link", 2, 3))))


def run_allreduce(machine, han, nbytes=256 * KiB, until=None):
    runtime = MPIRuntime(machine)

    def prog(comm):
        payload = np.full(int(nbytes // 8), float(comm.rank + 1))
        out = yield from han.allreduce(comm, nbytes, payload=payload)
        return comm.now, float(out[0])

    results = runtime.run(prog, until=until)
    return results, runtime


def test_allreduce_completes_and_is_correct_despite_dead_link():
    machine = dead_link_machine()
    results, _ = run_allreduce(machine, HanModule(degraded_timeout=2e-3))
    expect = sum(range(1, machine.num_ranks + 1))
    assert all(v == expect for _, v in results)
    # the probe deadline gates completion: everything lands after it
    assert all(t >= 2e-3 for t, _ in results)


def test_without_probe_the_hierarchical_schedule_wedges():
    # the event queue drains with every rank still blocked on flows that
    # stalled at the dead link: no rank ever returns.  A merely *slow*
    # schedule would still hold pending events at the horizon; a wedged
    # one has none (run(until=T) itself advances now to exactly T).
    results, runtime = run_allreduce(dead_link_machine(), HanModule(), until=1.0)
    assert all(r is None for r in results)
    assert runtime.engine.queue_depth == 0
    assert runtime.engine.now == 1.0


def test_bcast_falls_back_too():
    machine = dead_link_machine()
    runtime = MPIRuntime(machine)
    han = HanModule(degraded_timeout=2e-3)
    nbytes = 128 * KiB

    def prog(comm):
        payload = np.full(int(nbytes // 8), 42.0) if comm.rank == 0 else None
        out = yield from han.bcast(comm, nbytes, root=0, payload=payload)
        return float(out[0])

    assert runtime.run(prog) == [42.0] * machine.num_ranks


def test_verdict_is_cached_per_communicator():
    # second collective on the same comm skips the probe: it completes
    # well before a fresh 2 ms deadline could have fired
    machine = dead_link_machine()
    runtime = MPIRuntime(machine)
    han = HanModule(degraded_timeout=2e-3)

    def prog(comm):
        yield from han.allreduce(comm, 8.0, payload=np.ones(1))
        t1 = comm.now
        out = yield from han.allreduce(comm, 8.0, payload=np.ones(1))
        return comm.now - t1, float(out[0])

    results = runtime.run(prog)
    n = machine.num_ranks
    assert all(v == float(n) for _, v in results)
    assert all(dt < 2e-3 for dt, _ in results)


def test_healthy_fabric_stays_hierarchical_and_correct():
    base = ring5()
    probing = HanModule(degraded_timeout=2e-3)
    results, _ = run_allreduce(base, probing)
    expect = sum(range(1, base.num_ranks + 1))
    assert all(v == expect for _, v in results)
    # no deadline stall on a healthy fabric: finishes well under 2 ms + slack
    assert all(t < 2e-3 for t, _ in results)


def test_probe_disabled_is_bit_identical_to_seed_behavior():
    base = ring5()
    t_plain, _ = run_allreduce(base, HanModule())
    t_none, _ = run_allreduce(base, HanModule(degraded_timeout=None))
    assert t_plain == t_none
