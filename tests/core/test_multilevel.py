"""Tests for the three-level HAN extension (paper future work)."""

import numpy as np
import pytest

from repro.core import HanConfig
from repro.core.multilevel import MultiLevelHanModule, build_hierarchy3
from repro.hardware import MachineSpec, NicSpec, NodeSpec, shaheen2
from repro.mpi import MPIRuntime

KiB, MiB = 1024, 1024 * 1024


def dragonfly_machine(groups=3, routers=2, nodes_per_router=2, ppn=2):
    node = NodeSpec(cores=max(ppn, 4), mem_bw=60e9, copy_bw=6e9,
                    reduce_bw=2.5e9, reduce_bw_avx=10e9)
    return MachineSpec(
        name="dtest",
        num_nodes=groups * routers * nodes_per_router,
        ppn=ppn,
        node=node,
        nic=NicSpec(bw=10e9, latency=1.2e-6),
        topology="dragonfly",
        link_bw=12e9,
        topo_params=dict(
            nodes_per_router=nodes_per_router,
            routers_per_group=routers,
            global_links_per_router=2,
        ),
    )


CFG = HanConfig(fs=128 * KiB, imod="adapt", smod="sm",
                ibalg="binary", iralg="binary")


class TestHierarchy3:
    def test_levels_partition_by_dragonfly_group(self):
        machine = dragonfly_machine()
        runtime = MPIRuntime(machine)

        def prog(comm):
            hier = yield from build_hierarchy3(comm)
            return (
                hier.low.size,
                hier.mid.size,
                None if hier.top is None else hier.top.size,
                hier.num_groups,
            )

        results = runtime.run(prog)
        # 12 nodes in 3 groups of 4; ppn=2
        low, mid, top, groups = results[0]
        assert low == 2
        assert mid == 4  # nodes of my group, layer 0
        assert top == 3  # one leader per group
        assert groups == 3
        # exactly one top member per group per layer
        tops = [r[2] for r in results if r[2] is not None]
        assert len(tops) == 3 * 2  # 3 groups x 2 layers

    def test_cached(self):
        machine = dragonfly_machine()
        runtime = MPIRuntime(machine)

        def prog(comm):
            h1 = yield from build_hierarchy3(comm)
            h2 = yield from build_hierarchy3(comm)
            return h1 is h2

        assert all(runtime.run(prog))

    def test_synthesized_groups_on_crossbar(self):
        from repro.hardware import tiny_cluster

        machine = tiny_cluster(num_nodes=9, ppn=1)
        runtime = MPIRuntime(machine)

        def prog(comm):
            hier = yield from build_hierarchy3(comm)
            return hier.num_groups

        groups = runtime.run(prog)[0]
        assert 2 <= groups <= 5  # ~sqrt(9) nodes per synthetic group


class TestMultiLevelBcast:
    @pytest.mark.parametrize("root", [0, 2, 5, 11])
    def test_payload_everywhere(self, root):
        machine = dragonfly_machine()
        han3 = MultiLevelHanModule(config=CFG)
        data = np.arange(300, dtype=np.float64)
        runtime = MPIRuntime(machine)

        def prog(comm):
            payload = data if comm.rank == root else None
            out = yield from han3.bcast(
                comm, nbytes=data.nbytes, root=root, payload=payload
            )
            return out

        results = runtime.run(prog)
        for r, out in enumerate(results):
            np.testing.assert_array_equal(out, data, err_msg=f"rank {r}")

    def test_nonzero_layer_root_falls_back_to_two_level(self):
        machine = dragonfly_machine()
        han3 = MultiLevelHanModule(config=CFG)
        data = np.arange(64, dtype=np.float64)
        root = 1  # local rank 1 -> 2-level path
        runtime = MPIRuntime(machine)

        def prog(comm):
            payload = data if comm.rank == root else None
            out = yield from han3.bcast(
                comm, nbytes=data.nbytes, root=root, payload=payload
            )
            return out

        results = runtime.run(prog)
        for out in results:
            np.testing.assert_array_equal(out, data)

    def test_single_group_falls_back(self):
        machine = dragonfly_machine(groups=1)
        han3 = MultiLevelHanModule(config=CFG)
        data = np.arange(40, dtype=np.float64)
        runtime = MPIRuntime(machine)

        def prog(comm):
            payload = data if comm.rank == 0 else None
            out = yield from han3.bcast(
                comm, nbytes=data.nbytes, payload=payload
            )
            return out

        results = runtime.run(prog)
        for out in results:
            np.testing.assert_array_equal(out, data)

    def test_segmented_pipeline(self):
        machine = dragonfly_machine()
        han3 = MultiLevelHanModule(
            config=CFG.with_(fs=256)  # many segments
        )
        data = np.arange(512, dtype=np.float64)
        runtime = MPIRuntime(machine)

        def prog(comm):
            payload = data if comm.rank == 0 else None
            out = yield from han3.bcast(
                comm, nbytes=data.nbytes, payload=payload
            )
            return out

        results = runtime.run(prog)
        for out in results:
            np.testing.assert_array_equal(out, data)

    def test_three_level_helps_on_grouped_fabric_large_message(self):
        """On a dragonfly with weak global links, crossing them once per
        group (not once per node) must pay off for big broadcasts."""
        from repro.core import HanModule

        machine = dragonfly_machine(groups=6, routers=2,
                                    nodes_per_router=2, ppn=4)
        cfg = HanConfig(fs=2 * MiB, imod="adapt", smod="solo",
                        ibalg="chain", iralg="chain", ibs=512 * KiB,
                        irs=512 * KiB)
        times = {}
        for name, mod in (
            ("han2", HanModule(config=cfg)),
            ("han3", MultiLevelHanModule(config=cfg)),
        ):
            runtime = MPIRuntime(machine)

            def prog(comm, m=mod):
                yield from m.bcast(comm, nbytes=32 * MiB)

            runtime.run(prog)
            times[name] = runtime.engine.now
        assert times["han3"] < times["han2"]
