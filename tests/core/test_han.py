"""Correctness and behaviour of the HAN hierarchical collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HanConfig, HanModule
from repro.hardware import tiny_cluster
from repro.mpi import MAX, MPIRuntime, SUM
from tests.colls.helpers import rank_array

CONFIGS = [
    HanConfig(fs=None, imod="libnbc", smod="sm"),
    HanConfig(fs=128, imod="libnbc", smod="sm"),
    HanConfig(fs=128, imod="adapt", smod="sm", ibalg="chain", iralg="chain", ibs=64, irs=64),
    HanConfig(fs=256, imod="adapt", smod="solo", ibalg="binary", iralg="binomial"),
]


def run(prog, nodes=3, ppn=2, ranks=None):
    runtime = MPIRuntime(tiny_cluster(num_nodes=nodes, ppn=ppn))
    return runtime.run(prog, ranks=ranks), runtime.engine.now


class TestHanConfig:
    def test_table2_fields_roundtrip(self):
        cfg = HanConfig(fs=1024, imod="adapt", smod="solo", ibalg="binary",
                        iralg="chain", ibs=256, irs=512)
        assert cfg.key() == (1024, "adapt", "solo", "binary", "chain", 256, 512)
        assert "adapt" in cfg.describe()

    def test_invalid_modules_rejected(self):
        with pytest.raises(ValueError):
            HanConfig(imod="tuned")
        with pytest.raises(ValueError):
            HanConfig(smod="libnbc")

    def test_libnbc_cannot_take_algorithms(self):
        with pytest.raises(ValueError, match="algorithm"):
            HanConfig(imod="libnbc", ibalg="chain")

    def test_with_updates(self):
        cfg = HanConfig().with_(fs=42)
        assert cfg.fs == 42


class TestHierarchy:
    def test_unequal_ppn_rejected(self):
        han = HanModule(config=HanConfig(fs=None))

        def prog(comm):
            with pytest.raises(ValueError, match="same number of processes"):
                yield from han.bcast(comm, nbytes=8)
            return True

        # 5 ranks over 2-rank nodes -> last node has 1 rank
        results, _ = run(prog, nodes=3, ppn=2, ranks=5)
        assert all(results)

    def test_hierarchy_cached_across_calls(self):
        han = HanModule(config=HanConfig(fs=None))
        splits = []

        def prog(comm):
            from repro.core.subcomms import build_hierarchy

            h1 = yield from build_hierarchy(comm)
            h2 = yield from build_hierarchy(comm)
            splits.append(h1 is h2)

        run(prog)
        assert all(splits)


class TestHanBcast:
    @pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.describe())
    @pytest.mark.parametrize("root", [0, 1, 5])
    def test_payload_everywhere(self, cfg, root):
        han = HanModule(config=cfg)
        data = np.arange(200, dtype=np.float64) * 1.25

        def prog(comm):
            payload = data if comm.rank == root else None
            out = yield from han.bcast(
                comm, nbytes=data.nbytes, root=root, payload=payload
            )
            return out

        results, t = run(prog)
        for r, out in enumerate(results):
            np.testing.assert_array_equal(out, data, err_msg=f"rank {r}")
        assert t > 0

    def test_single_rank(self):
        han = HanModule()
        data = np.ones(4)

        def prog(comm):
            out = yield from han.bcast(comm, nbytes=32, payload=data)
            return out

        results, _ = run(prog, nodes=1, ppn=1)
        assert results[0] is data

    def test_one_rank_per_node(self):
        han = HanModule(config=HanConfig(fs=64, imod="adapt", ibalg="chain"))
        data = np.arange(64, dtype=np.float64)

        def prog(comm):
            payload = data if comm.rank == 0 else None
            out = yield from han.bcast(comm, nbytes=data.nbytes, payload=payload)
            return out

        results, _ = run(prog, nodes=4, ppn=1)
        for out in results:
            np.testing.assert_array_equal(out, data)

    def test_single_node(self):
        han = HanModule(config=HanConfig(fs=None))
        data = np.arange(32, dtype=np.float64)

        def prog(comm):
            payload = data if comm.rank == 0 else None
            out = yield from han.bcast(comm, nbytes=data.nbytes, payload=payload)
            return out

        results, _ = run(prog, nodes=1, ppn=4)
        for out in results:
            np.testing.assert_array_equal(out, data)

    def test_timing_only(self):
        han = HanModule(config=HanConfig(fs=256 * 1024, imod="adapt",
                                         ibalg="binary"))

        def prog(comm):
            out = yield from han.bcast(comm, nbytes=4 * 1024 * 1024)
            return out

        results, t = run(prog, nodes=4, ppn=4)
        assert all(r is None for r in results)
        assert t > 0

    @settings(max_examples=10, deadline=None)
    @given(
        nelems=st.integers(1, 300),
        root=st.integers(0, 5),
        fs=st.sampled_from([None, 64, 1000]),
        seed=st.integers(0, 2**31),
    )
    def test_property_bcast(self, nelems, root, fs, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal(nelems)
        han = HanModule(config=HanConfig(fs=fs))

        def prog(comm):
            payload = data if comm.rank == root else None
            out = yield from han.bcast(
                comm, nbytes=data.nbytes, root=root, payload=payload
            )
            return out

        results, _ = run(prog)
        for out in results:
            np.testing.assert_array_equal(out, data)


class TestHanAllreduce:
    @pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.describe())
    def test_sum_everywhere(self, cfg):
        han = HanModule(config=cfg)
        n = 60

        def prog(comm):
            out = yield from han.allreduce(
                comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=SUM
            )
            return out

        results, _ = run(prog)
        want = np.sum([rank_array(r, n) for r in range(6)], axis=0)
        for r, out in enumerate(results):
            np.testing.assert_allclose(out, want, err_msg=f"rank {r}")

    def test_max_op(self):
        han = HanModule(config=HanConfig(fs=None))
        n = 16

        def prog(comm):
            out = yield from han.allreduce(
                comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=MAX
            )
            return out

        results, _ = run(prog)
        want = rank_array(5, n)  # highest rank dominates
        for out in results:
            np.testing.assert_allclose(out, want)

    def test_noncommutative_rejected(self):
        from repro.mpi.op import Op

        han = HanModule()
        weird = Op("first", lambda a, b: a, commutative=False)

        def prog(comm):
            with pytest.raises(ValueError, match="commutative"):
                yield from han.allreduce(comm, nbytes=8, op=weird)
            yield from comm.barrier()
            return True

        results, _ = run(prog)
        assert all(results)

    def test_pipeline_with_many_segments(self):
        han = HanModule(
            config=HanConfig(fs=64, imod="adapt", ibalg="chain", iralg="chain")
        )
        n = 128  # 1024 bytes -> 16 segments

        def prog(comm):
            out = yield from han.allreduce(
                comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=SUM
            )
            return out

        results, _ = run(prog)
        want = np.sum([rank_array(r, n) for r in range(6)], axis=0)
        for out in results:
            np.testing.assert_allclose(out, want)

    def test_one_rank_per_node_and_single_node(self):
        han = HanModule(config=HanConfig(fs=None))
        n = 20

        for nodes, ppn in ((4, 1), (1, 4)):
            def prog(comm):
                out = yield from han.allreduce(
                    comm, nbytes=n * 8, payload=rank_array(comm.rank, n), op=SUM
                )
                return out

            results, _ = run(prog, nodes=nodes, ppn=ppn)
            want = np.sum([rank_array(r, n) for r in range(4)], axis=0)
            for out in results:
                np.testing.assert_allclose(out, want)


class TestHanExtensions:
    def test_reduce(self):
        han = HanModule(config=HanConfig(fs=128))
        n = 40

        for root in (0, 3):
            def prog(comm):
                out = yield from han.reduce(
                    comm, nbytes=n * 8, root=root,
                    payload=rank_array(comm.rank, n), op=SUM,
                )
                return out

            results, _ = run(prog)
            want = np.sum([rank_array(r, n) for r in range(6)], axis=0)
            np.testing.assert_allclose(results[root], want)
            assert all(
                r is None for i, r in enumerate(results) if i != root
            )

    def test_gather(self):
        han = HanModule(config=HanConfig(fs=None))
        n = 5

        def prog(comm):
            out = yield from han.gather(
                comm, nbytes=n * 8, root=0, payload=rank_array(comm.rank, n)
            )
            return out

        results, _ = run(prog)
        want = np.concatenate([rank_array(r, n) for r in range(6)])
        np.testing.assert_array_equal(results[0], want)
        assert all(r is None for r in results[1:])

    def test_allgather(self):
        han = HanModule(config=HanConfig(fs=None))
        n = 4

        def prog(comm):
            out = yield from han.allgather(
                comm, nbytes=n * 8, payload=rank_array(comm.rank, n)
            )
            return out

        results, _ = run(prog)
        want = np.concatenate([rank_array(r, n) for r in range(6)])
        for out in results:
            np.testing.assert_array_equal(out, want)

    def test_scatter(self):
        han = HanModule(config=HanConfig(fs=None))
        n = 4
        full = np.concatenate([rank_array(r, n) for r in range(6)])

        def prog(comm):
            payload = full if comm.rank == 0 else None
            out = yield from han.scatter(
                comm, nbytes=full.nbytes, root=0, payload=payload
            )
            return out

        results, _ = run(prog)
        for r, out in enumerate(results):
            np.testing.assert_array_equal(out, rank_array(r, n))

    def test_barrier(self):
        han = HanModule(config=HanConfig(fs=None))
        exits = {}

        def prog(comm):
            yield from comm.compute(0.1 * comm.rank)
            yield from han.barrier(comm)
            exits[comm.rank] = comm.now

        run(prog)
        assert min(exits.values()) >= 0.5


class TestHanPerformance:
    def test_pipelining_beats_no_pipelining_large(self):
        """Segmentation must pay off for big messages (the HAN thesis)."""
        times = {}
        for fs in (None, 512 * 1024):
            han = HanModule(
                config=HanConfig(fs=fs, imod="adapt", smod="solo",
                                 ibalg="binary", iralg="binary")
            )

            def prog(comm, h=han):
                yield from h.bcast(comm, nbytes=32 * 1024 * 1024)

            _, times[fs] = run(prog, nodes=4, ppn=4)
        assert times[512 * 1024] < times[None] * 0.8

    def test_han_beats_flat_tuned_large_bcast(self):
        """The headline claim: hierarchy + overlap beats the flat default."""
        from repro.modules import TunedModule

        nbytes = 16 * 1024 * 1024

        # chain keeps the root's NIC volume at m (binary would double it);
        # picking this is exactly the autotuner's job.
        han = HanModule(
            config=HanConfig(fs=2 * 1024 * 1024, imod="adapt", smod="solo",
                             ibalg="chain", ibs=512 * 1024)
        )

        def prog_han(comm):
            yield from han.bcast(comm, nbytes=nbytes)

        tuned = TunedModule()

        def prog_tuned(comm):
            yield from tuned.bcast(comm, nbytes=nbytes)

        _, t_han = run(prog_han, nodes=4, ppn=4)
        _, t_tuned = run(prog_tuned, nodes=4, ppn=4)
        assert t_han < t_tuned

    def test_decision_fn_used_when_no_config(self):
        seen = []

        def decide(n, p, m, coll):
            seen.append((n, p, m, coll))
            return HanConfig(fs=None)

        han = HanModule(decision_fn=decide)

        def prog(comm):
            yield from han.bcast(comm, nbytes=4096)

        run(prog)
        assert seen and seen[0] == (3, 2, 4096, "bcast")
