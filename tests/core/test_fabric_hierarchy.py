"""The fabric tier: split-NVLink presets, hierarchy comms, composite.

Covers the three layers of the fabric/node/network composition:

- hardware: ``NodeSpec.fabric_domains`` validation and the ``gpu_pod``
  preset,
- runtime: per-island NVLink resources and ``fabric_domain_of``,
- hierarchy: ``fab``/``fleaders`` sub-communicators from
  ``build_hierarchy`` and the :class:`FabricComposite` HAN wires in
  when ``smod="gpu"`` meets a split node.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import HanConfig, HanModule
from repro.core.fabric_tier import FabricComposite
from repro.core.subcomms import build_hierarchy
from repro.hardware import MACHINE_PRESETS, gpu_cluster, gpu_pod, tiny_cluster
from repro.hardware.spec import MachineSpec, NicSpec, NodeSpec
from repro.mpi import MPIRuntime


def _gpu_node(**kw) -> NodeSpec:
    base = dict(
        cores=8, mem_bw=100e9, copy_bw=8e9, reduce_bw=3e9,
        reduce_bw_avx=12e9, gpus=8, nvlink_bw=200e9, pcie_bw=12e9,
        gpu_reduce_bw=100e9,
    )
    base.update(kw)
    return NodeSpec(**base)


class TestSpecValidation:
    def test_negative_fabric_domains_rejected(self):
        with pytest.raises(ValueError, match="fabric_domains"):
            _gpu_node(fabric_domains=-1)

    def test_split_fabric_requires_gpus(self):
        with pytest.raises(ValueError, match="fabric_domains"):
            _gpu_node(gpus=0, nvlink_bw=0.0, pcie_bw=0.0,
                      gpu_reduce_bw=0.0, fabric_domains=2)

    def test_gpus_must_split_evenly(self):
        with pytest.raises(ValueError, match="fabric_domains"):
            _gpu_node(gpus=6, fabric_domains=4)

    def test_ppn_must_split_evenly(self):
        node = _gpu_node(fabric_domains=2)
        with pytest.raises(ValueError, match="ppn"):
            MachineSpec(
                name="bad", num_nodes=2, ppn=3, node=node,
                nic=NicSpec(bw=25e9, latency=1.2e-6),
            )

    def test_flat_nodes_unconstrained(self):
        # 0 and 1 both mean "one flat fabric" — no divisibility rules
        _gpu_node(gpus=6, fabric_domains=0)
        _gpu_node(gpus=6, fabric_domains=1)


class TestGpuPodPreset:
    def test_registered(self):
        assert "gpu_pod" in MACHINE_PRESETS
        assert MACHINE_PRESETS["gpu_pod"] is gpu_pod

    def test_split_fabric_geometry(self):
        m = gpu_pod(num_nodes=2, ppn=8)
        assert m.node.fabric_domains == 2
        assert m.node.gpus % m.node.fabric_domains == 0
        assert m.ppn % m.node.fabric_domains == 0

    def test_scaled_keeps_split(self):
        m = gpu_pod(num_nodes=2, ppn=8).scaled(num_nodes=3, ppn=4)
        assert m.node.fabric_domains == 2
        assert m.ppn == 4

    def test_gpu_cluster_stays_flat(self):
        assert gpu_cluster().node.fabric_domains == 0


class TestFabricResources:
    def test_domain_of_block_placement(self):
        runtime = MPIRuntime(gpu_pod(num_nodes=2, ppn=8))
        fabric = runtime.fabric
        assert fabric.fabric_domains == 2
        # ranks 0-3 on island 0, 4-7 on island 1, same pattern on node 1
        assert [fabric.fabric_domain_of(r) for r in range(8)] == \
            [0, 0, 0, 0, 1, 1, 1, 1]
        assert [fabric.fabric_domain_of(r) for r in range(8, 16)] == \
            [0, 0, 0, 0, 1, 1, 1, 1]

    def test_flat_gpu_machine_single_domain(self):
        runtime = MPIRuntime(gpu_cluster(num_nodes=1, ppn=4))
        fabric = runtime.fabric
        assert fabric.fabric_domains == 1
        assert all(fabric.fabric_domain_of(r) == 0 for r in range(4))

    def test_cpu_machine_has_no_fabric_domains(self):
        runtime = MPIRuntime(tiny_cluster(num_nodes=1, ppn=4))
        assert runtime.fabric.fabric_domains == 0

    def test_per_island_fault_targets(self):
        runtime = MPIRuntime(gpu_pod(num_nodes=2, ppn=8))
        fabric = runtime.fabric
        both = fabric.fault_resources("nvlink", 0)
        assert len(both) == 2
        one = fabric.fault_resources("nvlink", 0, 1)
        assert len(one) == 1 and one[0] in both
        assert fabric.fault_resources("nvlink", 0, 0) != one
        assert len(fabric.fault_resources("pcie", 0)) == 2

    def test_flat_machine_single_island_target(self):
        runtime = MPIRuntime(gpu_cluster(num_nodes=1, ppn=4))
        assert len(runtime.fabric.fault_resources("nvlink", 0)) == 1


def _hier_props(machine, ranks):
    runtime = MPIRuntime(machine)

    def prog(comm):
        hier = yield from build_hierarchy(comm)
        return {
            "has_fabric": hier.has_fabric_tier,
            "fab_size": hier.fab.size if hier.fab else None,
            "fab_rank": hier.fab.rank if hier.fab else None,
            "is_leader": hier.fleaders is not None,
            "fleaders_size": hier.fleaders.size if hier.fleaders else None,
        }

    return runtime.run(prog, ranks=ranks)


class TestHierarchyComms:
    def test_flat_machine_has_no_fabric_comms(self):
        props = _hier_props(tiny_cluster(num_nodes=2, ppn=4), 8)
        assert all(not p["has_fabric"] for p in props)
        assert all(p["fab_size"] is None for p in props)

    def test_flat_gpu_machine_has_no_fabric_comms(self):
        props = _hier_props(gpu_cluster(num_nodes=2, ppn=4), 8)
        assert all(not p["has_fabric"] for p in props)

    def test_pod_fab_and_fleaders_structure(self):
        props = _hier_props(gpu_pod(num_nodes=2, ppn=8), 16)
        assert all(p["has_fabric"] for p in props)
        # islands of ppn / domains = 4 ranks each
        assert all(p["fab_size"] == 4 for p in props)
        # exactly the island leaders (fab rank 0) carry fleaders,
        # one leader per island -> fleaders spans 2 ranks per node
        leaders = [p for p in props if p["is_leader"]]
        assert len(leaders) == 4
        assert all(p["fab_rank"] == 0 for p in leaders)
        assert all(p["fleaders_size"] == 2 for p in leaders)
        assert all(p["fab_rank"] != 0 for p in props if not p["is_leader"])


class TestFabricComposite:
    def _run_pod(self, prog, num_nodes=1, ppn=8):
        runtime = MPIRuntime(gpu_pod(num_nodes=num_nodes, ppn=ppn))
        return runtime.run(prog, ranks=num_nodes * ppn)

    def test_rejects_foreign_comm(self):
        han = HanModule()

        def prog(comm):
            hier = yield from build_hierarchy(comm)
            cfg = HanConfig(fs=None, imod="libnbc", smod="gpu")
            comp = han._intra_module(hier, cfg)
            assert isinstance(comp, FabricComposite)
            with pytest.raises(ValueError, match="node comm"):
                next(comp.bcast(comm, 64))
            return True

        assert all(self._run_pod(prog))

    def test_intra_module_wraps_and_caches(self):
        han = HanModule()

        def prog(comm):
            hier = yield from build_hierarchy(comm)
            gpu_cfg = HanConfig(fs=None, imod="libnbc", smod="gpu")
            comp = han._intra_module(hier, gpu_cfg)
            again = han._intra_module(hier, gpu_cfg)
            host = han._intra_module(
                hier, HanConfig(fs=None, imod="libnbc", smod="sm")
            )
            return (
                isinstance(comp, FabricComposite),
                comp is again,  # cached per hierarchy
                type(host).name == "sm",  # host smods bypass the wrapper
            )

        assert all(all(flags) for flags in self._run_pod(prog))

    def test_flat_hierarchy_bypasses_wrapper(self):
        han = HanModule()
        runtime = MPIRuntime(gpu_cluster(num_nodes=2, ppn=4))

        def prog(comm):
            hier = yield from build_hierarchy(comm)
            mod = han._intra_module(
                hier, HanConfig(fs=None, imod="libnbc", smod="gpu")
            )
            return type(mod).name == "gpu"

        assert all(runtime.run(prog, ranks=8))

    def test_allreduce_exact_on_node_comm(self):
        han = HanModule()
        n = 64
        blocks = [np.arange(n, dtype=np.float64) + r for r in range(8)]
        want = np.sum(blocks, axis=0)

        def prog(comm):
            hier = yield from build_hierarchy(comm)
            comp = han._intra_module(
                hier, HanConfig(fs=None, imod="libnbc", smod="gpu")
            )
            out = yield from comp.allreduce(
                hier.low, n * 8, payload=blocks[comm.rank]
            )
            return out

        for out in self._run_pod(prog):
            np.testing.assert_array_equal(out, want)

    def test_split_fabric_slower_than_flat_for_cross_island_traffic(self):
        """Same GPUs, same NVLink speed: the PCIe bridge must cost time."""
        nbytes = 8 * 1024 * 1024
        times = {}
        for name, machine in (
            ("pod", gpu_pod(num_nodes=1, ppn=8)),
            ("flat", dataclasses.replace(
                gpu_pod(num_nodes=1, ppn=8),
                node=dataclasses.replace(
                    gpu_pod().node, fabric_domains=0
                ),
            )),
        ):
            han = HanModule(
                config=HanConfig(fs=None, imod="libnbc", smod="gpu")
            )
            runtime = MPIRuntime(machine)

            def prog(comm, h=han):
                yield from h.allreduce(comm, nbytes)

            runtime.run(prog, ranks=8)
            times[name] = runtime.engine.now
        assert times["pod"] > times["flat"]
