"""Correctness of the hierarchical all-to-all extension."""

import numpy as np
import pytest

from repro.core import HanConfig, HanModule
from repro.hardware import tiny_cluster
from repro.mpi import MPIRuntime


def alltoall_reference(contribs, size, per):
    """Expected receive buffer of each rank."""
    out = {}
    for me in range(size):
        parts = [
            contribs[src][me * per : (me + 1) * per] for src in range(size)
        ]
        out[me] = np.concatenate(parts)
    return out


@pytest.mark.parametrize("nodes,ppn", [(2, 2), (3, 2), (2, 3), (4, 1)])
def test_han_alltoall_matches_reference(nodes, ppn):
    machine = tiny_cluster(num_nodes=nodes, ppn=ppn)
    size = machine.num_ranks
    per = 5
    han = HanModule(config=HanConfig(fs=None))
    contribs = {
        r: np.arange(size * per, dtype=np.float64) + 1000.0 * r
        for r in range(size)
    }
    want = alltoall_reference(contribs, size, per)
    runtime = MPIRuntime(machine)

    def prog(comm):
        out = yield from han.alltoall(
            comm, nbytes=per * 8, payload=contribs[comm.rank]
        )
        return out

    results = runtime.run(prog)
    for me, out in enumerate(results):
        np.testing.assert_array_equal(out, want[me], err_msg=f"rank {me}")


def test_han_alltoall_timing_only():
    machine = tiny_cluster(num_nodes=2, ppn=2)
    han = HanModule(config=HanConfig(fs=None))
    runtime = MPIRuntime(machine)

    def prog(comm):
        out = yield from han.alltoall(comm, nbytes=64 * 1024)
        return out

    results = runtime.run(prog)
    assert all(r is None for r in results)
    assert runtime.engine.now > 0


def test_han_alltoall_single_rank():
    machine = tiny_cluster(num_nodes=1, ppn=1)
    han = HanModule()
    data = np.arange(4, dtype=np.float64)
    runtime = MPIRuntime(machine)

    def prog(comm):
        out = yield from han.alltoall(comm, nbytes=32, payload=data)
        return out

    results = runtime.run(prog)
    assert results[0] is data
