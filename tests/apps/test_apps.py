"""Tests for the ASP and Horovod applications."""

import numpy as np
import pytest

from repro.apps import (
    ALEXNET_LAYER_BYTES,
    asp_reference,
    asp_run,
    asp_verify,
    horovod_run,
)
from repro.apps.horovod import FUSION_BUFFER, fuse_buckets
from repro.comparators import OpenMPIDefault, OpenMPIHan
from repro.hardware import tiny_cluster

MACHINE = tiny_cluster(num_nodes=3, ppn=2)


def random_weights(n, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.uniform(1, 100, size=(n, n))
    np.fill_diagonal(w, 0.0)
    return w


class TestASP:
    def test_reference_matches_networkx(self):
        import networkx as nx

        w = random_weights(12)
        ref = asp_reference(w)
        g = nx.from_numpy_array(w, create_using=nx.DiGraph)
        for src, lengths in nx.all_pairs_dijkstra_path_length(g):
            for dst, dist in lengths.items():
                assert ref[src, dst] == pytest.approx(dist)

    @pytest.mark.parametrize("lib_cls", [OpenMPIDefault, OpenMPIHan])
    def test_distributed_matches_reference(self, lib_cls):
        w = random_weights(18, seed=3)
        got = asp_verify(MACHINE, lib_cls(), w)
        np.testing.assert_allclose(got, asp_reference(w))

    def test_timing_mode_reports_comm_ratio(self):
        res = asp_run(MACHINE, OpenMPIDefault(), n_vertices=5000, iterations=6)
        assert res.iterations == 6
        assert 0 < res.comm_time <= res.total_time
        assert 0 < res.comm_ratio < 1

    def test_every_rank_roots_in_first_p_iterations(self):
        res = asp_run(MACHINE, OpenMPIDefault(), n_vertices=2000)
        assert res.iterations == MACHINE.num_ranks

    def test_han_lowers_comm_ratio(self):
        """Table III's claim: HAN cuts the communication share.

        Compared against the Intel MPI model (default Open MPI's flat
        chain wavefronts across iterations in the zero-noise simulator,
        see EXPERIMENTS.md).
        """
        from repro.apps import calibrated_flops
        from repro.comparators import IntelMPI

        n = 1_000_000  # the paper's 4MB rows
        han_lib = OpenMPIHan()
        flops = calibrated_flops(MACHINE, han_lib, n)
        intel = asp_run(MACHINE, IntelMPI(), n_vertices=n, iterations=6,
                        flops=flops)
        han = asp_run(MACHINE, han_lib, n_vertices=n, iterations=6,
                      flops=flops)
        assert han.comm_time < intel.comm_time
        assert han.total_time < intel.total_time


class TestHorovod:
    def test_fusion_buckets_cover_all_bytes(self):
        buckets = fuse_buckets(ALEXNET_LAYER_BYTES)
        assert sum(buckets) == pytest.approx(sum(ALEXNET_LAYER_BYTES))
        assert all(b <= FUSION_BUFFER * 1.0 + max(ALEXNET_LAYER_BYTES) for b in buckets)

    def test_alexnet_size_sane(self):
        # ~61M parameters -> ~244 MB of fp32 gradients
        total = sum(ALEXNET_LAYER_BYTES)
        assert 200e6 < total < 260e6

    def test_run_reports_throughput(self):
        res = horovod_run(MACHINE, OpenMPIDefault(), steps=1,
                          compute_per_step=0.2)
        assert res.step_time > 0.2
        assert res.images_per_sec > 0
        assert 0 < res.comm_ratio < 1

    def test_han_trains_faster(self):
        """Fig 15: HAN beats default Open MPI."""
        omp = horovod_run(MACHINE, OpenMPIDefault(), steps=1)
        han = horovod_run(MACHINE, OpenMPIHan(), steps=1)
        assert han.images_per_sec > omp.images_per_sec
